package policy

// A minimal YAML-subset parser for the one fixed document shape policy
// files use — a top-level name plus a flat list of scalar-valued rule
// maps. The repo takes no dependencies, and a full YAML implementation
// would be wildly out of proportion for this schema; anything outside the
// subset is a loud error, never a silent misparse.
//
// Recognized shape (two-space indentation, '#' comments, optional single
// or double quotes around scalars):
//
//	name: ci gate
//	rules:
//	  - name: stale-high
//	    level: fail
//	    scope: finding
//	    when: severity == "high" && age(disclosed) > 90d
//	    msg: message shown on trigger

import (
	"fmt"
	"strings"
)

func parseYAMLSubset(src string) (rawPolicy, error) {
	var p rawPolicy
	var cur *rawRule
	inRules := false
	flush := func() {
		if cur != nil {
			p.Rules = append(p.Rules, *cur)
			cur = nil
		}
	}
	for ln, line := range strings.Split(src, "\n") {
		lineNo := ln + 1
		stripped := stripComment(line)
		if strings.TrimSpace(stripped) == "" {
			continue
		}
		trimmed := strings.TrimLeft(stripped, " ")
		indent := len(stripped) - len(trimmed)
		if strings.HasPrefix(trimmed, "\t") {
			return p, fmt.Errorf("line %d: tabs are not valid YAML indentation", lineNo)
		}
		body := strings.TrimSpace(stripped)
		switch {
		case indent == 0:
			flush()
			inRules = false
			key, val, err := splitKV(body, lineNo)
			if err != nil {
				return p, err
			}
			switch key {
			case "name":
				p.Name = val
			case "rules":
				if val != "" {
					return p, fmt.Errorf("line %d: rules: must introduce a list", lineNo)
				}
				inRules = true
			default:
				return p, fmt.Errorf("line %d: unknown top-level key %q (want name or rules)", lineNo, key)
			}
		case inRules && strings.HasPrefix(body, "- "):
			flush()
			cur = &rawRule{}
			key, val, err := splitKV(strings.TrimSpace(body[2:]), lineNo)
			if err != nil {
				return p, err
			}
			if err := setRuleField(cur, key, val, lineNo); err != nil {
				return p, err
			}
		case inRules && cur != nil:
			key, val, err := splitKV(body, lineNo)
			if err != nil {
				return p, err
			}
			if err := setRuleField(cur, key, val, lineNo); err != nil {
				return p, err
			}
		default:
			return p, fmt.Errorf("line %d: unexpected content %q outside the policy schema", lineNo, body)
		}
	}
	flush()
	return p, nil
}

// stripComment removes a trailing # comment, respecting quoted strings —
// `when: attack == "#weird"` must survive.
func stripComment(line string) string {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#':
			// YAML only treats # as a comment at start or after whitespace.
			if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
				return line[:i]
			}
		}
	}
	return line
}

func splitKV(body string, lineNo int) (key, val string, err error) {
	i := strings.IndexByte(body, ':')
	if i < 0 {
		return "", "", fmt.Errorf("line %d: expected key: value, got %q", lineNo, body)
	}
	key = strings.TrimSpace(body[:i])
	val = strings.TrimSpace(body[i+1:])
	if len(val) >= 2 {
		if (val[0] == '"' && val[len(val)-1] == '"') || (val[0] == '\'' && val[len(val)-1] == '\'') {
			val = val[1 : len(val)-1]
		}
	}
	return key, val, nil
}

func setRuleField(r *rawRule, key, val string, lineNo int) error {
	switch key {
	case "name":
		r.Name = val
	case "level":
		r.Level = val
	case "scope":
		r.Scope = val
	case "when":
		r.When = val
	case "msg":
		r.Msg = val
	default:
		return fmt.Errorf("line %d: unknown rule key %q (want name, level, scope, when, or msg)", lineNo, key)
	}
	return nil
}
