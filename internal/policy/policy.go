// Package policy is the declarative audit-verdict engine: a client (or a
// server operator) ships a small list of rules, each a predicate over one
// audit result, and the engine returns a per-rule pass/warn/fail verdict
// plus an overall exit verdict — the piece that turns an audit blob into a
// CI-pluggable yes/no. The shape follows mcptrust's CEL policy layer
// (SNIPPETS.md snippet 2) scoped down to the paper's per-site framing:
// one page, one verdict.
//
// A policy file is YAML (a fixed flat subset, parsed here — the repo takes
// no dependencies) or JSON:
//
//	name: ci gate
//	rules:
//	  - name: stale-high
//	    level: fail            # fail (default) | warn
//	    scope: finding         # page (default) | library | finding
//	    when: severity == "high" && age(disclosed) > 90d
//	    msg: a high-severity advisory has been public for over 90 days
//
// Rules scoped `library` or `finding` trigger when ANY item matches;
// `page` rules evaluate once against the document. Evaluation is
// deterministic: the same document (including its audit clock) always
// produces byte-identical verdict JSON, which is what lets the online,
// batch, and offline paths prove equivalence.
package policy

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Library is one detected library inclusion, as the policy engine sees it.
type Library struct {
	Slug         string
	Known        bool
	Version      string
	External     bool
	Host         string
	SRI          bool
	Crossorigin  string
	Discontinued bool
}

// Finding is one matched advisory, as the policy engine sees it.
type Finding struct {
	Library            string
	Version            string
	Advisory           string
	Attack             string
	Severity           string
	Disclosed          time.Time
	FixedIn            string
	PatchAvailableDays int
	PerCVEOnly         bool
	Conditional        bool
}

// Doc is the evaluation input: one audit result plus the audit clock.
// Callers build it from an AuditResponse; the engine never sees HTML.
type Doc struct {
	Host          string
	Libraries     []Library
	Findings      []Finding
	VulnerableTVV bool
	VulnerableCVE bool
	MissingSRI    int
	ScriptCount   int
	UsesFlash     bool
	InsecureFlash bool
	WordPress     string
	// Now is the evaluation clock age() measures against — the same
	// instant the audit itself used, so verdicts are a pure function of
	// the audit inputs.
	Now time.Time
}

// Rule is one compiled policy rule.
type Rule struct {
	Name  string
	Level string // "fail" | "warn"
	Scope string // "page" | "library" | "finding"
	When  string
	Msg   string
	expr  node
}

// Policy is a compiled, immutable rule list, safe for concurrent Eval.
type Policy struct {
	Name  string
	Rules []*Rule
}

// RuleVerdict is one rule's outcome on one document.
type RuleVerdict struct {
	Rule    string `json:"rule"`
	Level   string `json:"level"`
	Outcome string `json:"outcome"` // "pass" | "warn" | "fail"
	// Matched counts scope items the predicate selected (0 or 1 for page
	// rules); Detail names up to maxDetail of them.
	Matched int      `json:"matched,omitempty"`
	Detail  []string `json:"detail,omitempty"`
	Msg     string   `json:"msg,omitempty"`
}

// Verdict is a policy's full result on one document.
type Verdict struct {
	Policy string `json:"policy,omitempty"`
	// Overall is the exit verdict: "fail" if any fail-level rule
	// triggered, else "warn" if any warn-level rule triggered, else
	// "pass".
	Overall string        `json:"overall"`
	Rules   []RuleVerdict `json:"rules"`
}

// Compile limits: enough for real gates, small enough that an inline
// policy from an untrusted client cannot become a resource sink.
const (
	MaxSourceBytes = 64 << 10
	maxRules       = 64
	maxDetail      = 8
)

// rawPolicy is the wire/file shape before expression compilation.
type rawPolicy struct {
	Name  string    `json:"name"`
	Rules []rawRule `json:"rules"`
}

type rawRule struct {
	Name  string `json:"name"`
	Level string `json:"level"`
	Scope string `json:"scope"`
	When  string `json:"when"`
	Msg   string `json:"msg"`
}

// Compile parses and type-checks a policy from YAML-subset or JSON source.
func Compile(src []byte) (*Policy, error) {
	if len(src) > MaxSourceBytes {
		return nil, fmt.Errorf("policy: source larger than %d bytes", MaxSourceBytes)
	}
	trimmed := strings.TrimSpace(string(src))
	if trimmed == "" {
		return nil, fmt.Errorf("policy: empty source")
	}
	var raw rawPolicy
	var err error
	if trimmed[0] == '{' {
		err = json.Unmarshal([]byte(trimmed), &raw)
	} else {
		raw, err = parseYAMLSubset(trimmed)
	}
	if err != nil {
		return nil, fmt.Errorf("policy: %v", err)
	}
	return compileRaw(raw)
}

func compileRaw(raw rawPolicy) (*Policy, error) {
	if len(raw.Rules) == 0 {
		return nil, fmt.Errorf("policy: no rules")
	}
	if len(raw.Rules) > maxRules {
		return nil, fmt.Errorf("policy: %d rules exceeds the %d-rule cap", len(raw.Rules), maxRules)
	}
	p := &Policy{Name: raw.Name}
	seen := make(map[string]bool, len(raw.Rules))
	for i, rr := range raw.Rules {
		r := &Rule{
			Name: rr.Name, Level: rr.Level, Scope: rr.Scope,
			When: strings.TrimSpace(rr.When), Msg: rr.Msg,
		}
		if r.Name == "" {
			r.Name = fmt.Sprintf("rule-%d", i+1)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("policy: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		switch r.Level {
		case "":
			r.Level = "fail"
		case "fail", "warn":
		default:
			return nil, fmt.Errorf("policy: rule %q: level %q (want fail or warn)", r.Name, rr.Level)
		}
		fields, ok := scopeFields[r.Scope]
		if r.Scope == "" {
			r.Scope, fields, ok = "page", scopeFields["page"], true
		}
		if !ok {
			return nil, fmt.Errorf("policy: rule %q: scope %q (want page, library, or finding)", r.Name, rr.Scope)
		}
		if r.When == "" {
			return nil, fmt.Errorf("policy: rule %q: missing when expression", r.Name)
		}
		expr, err := compileExpr(r.When, fields)
		if err != nil {
			return nil, fmt.Errorf("policy: rule %q: %v", r.Name, err)
		}
		r.expr = expr
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

// Eval runs every rule against doc. The result is deterministic: rules
// evaluate in declaration order, items in document order.
func (p *Policy) Eval(doc *Doc) Verdict {
	v := Verdict{Policy: p.Name, Overall: "pass", Rules: make([]RuleVerdict, 0, len(p.Rules))}
	for _, r := range p.Rules {
		rv := RuleVerdict{Rule: r.Name, Level: r.Level, Outcome: "pass"}
		e := env{doc: doc}
		switch r.Scope {
		case "page":
			if r.expr.eval(&e).b {
				rv.Matched = 1
			}
		case "library":
			for i := range doc.Libraries {
				e.lib = &doc.Libraries[i]
				if r.expr.eval(&e).b {
					rv.Matched++
					if len(rv.Detail) < maxDetail {
						rv.Detail = append(rv.Detail, libLabel(e.lib))
					}
				}
			}
		case "finding":
			for i := range doc.Findings {
				e.fin = &doc.Findings[i]
				if r.expr.eval(&e).b {
					rv.Matched++
					if len(rv.Detail) < maxDetail {
						rv.Detail = append(rv.Detail, findingLabel(e.fin))
					}
				}
			}
		}
		if rv.Matched > 0 {
			rv.Outcome = r.Level
			rv.Msg = r.Msg
			if r.Level == "fail" {
				v.Overall = "fail"
			} else if v.Overall == "pass" {
				v.Overall = "warn"
			}
		}
		v.Rules = append(v.Rules, rv)
	}
	return v
}

func libLabel(l *Library) string {
	label := l.Slug
	if l.Version != "" {
		label += "@" + l.Version
	}
	return label
}

func findingLabel(f *Finding) string {
	label := f.Library
	if f.Version != "" {
		label += "@" + f.Version
	}
	return label + " " + f.Advisory
}

// scopeFields maps each rule scope to its resolvable fields. Library and
// finding scopes also expose the page-level fields under a "page." prefix,
// so a rule can mix item and document conditions.
var scopeFields = map[string]map[string]fieldSpec{
	"page":    pageFields(""),
	"library": merge(libraryFields(), pageFields("page.")),
	"finding": merge(findingFields(), pageFields("page.")),
}

func merge(maps ...map[string]fieldSpec) map[string]fieldSpec {
	out := make(map[string]fieldSpec)
	for _, m := range maps {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

func pageFields(prefix string) map[string]fieldSpec {
	str := func(get func(d *Doc) string) fieldSpec {
		return fieldSpec{k: kindString, get: func(e *env) value { return value{kind: kindString, s: get(e.doc)} }}
	}
	num := func(get func(d *Doc) int) fieldSpec {
		return fieldSpec{k: kindNumber, get: func(e *env) value { return value{kind: kindNumber, n: float64(get(e.doc))} }}
	}
	boo := func(get func(d *Doc) bool) fieldSpec {
		return fieldSpec{k: kindBool, get: func(e *env) value { return value{kind: kindBool, b: get(e.doc)} }}
	}
	return map[string]fieldSpec{
		prefix + "host":           str(func(d *Doc) string { return d.Host }),
		prefix + "wordpress":      str(func(d *Doc) string { return d.WordPress }),
		prefix + "missing_sri":    num(func(d *Doc) int { return d.MissingSRI }),
		prefix + "script_count":   num(func(d *Doc) int { return d.ScriptCount }),
		prefix + "libraries":      num(func(d *Doc) int { return len(d.Libraries) }),
		prefix + "findings":       num(func(d *Doc) int { return len(d.Findings) }),
		prefix + "vulnerable_tvv": boo(func(d *Doc) bool { return d.VulnerableTVV }),
		prefix + "vulnerable_cve": boo(func(d *Doc) bool { return d.VulnerableCVE }),
		prefix + "uses_flash":     boo(func(d *Doc) bool { return d.UsesFlash }),
		prefix + "insecure_flash": boo(func(d *Doc) bool { return d.InsecureFlash }),
	}
}

func libraryFields() map[string]fieldSpec {
	str := func(get func(l *Library) string) fieldSpec {
		return fieldSpec{k: kindString, get: func(e *env) value { return value{kind: kindString, s: get(e.lib)} }}
	}
	boo := func(get func(l *Library) bool) fieldSpec {
		return fieldSpec{k: kindBool, get: func(e *env) value { return value{kind: kindBool, b: get(e.lib)} }}
	}
	return map[string]fieldSpec{
		"slug":         str(func(l *Library) string { return l.Slug }),
		"version":      str(func(l *Library) string { return l.Version }),
		"host":         str(func(l *Library) string { return l.Host }),
		"crossorigin":  str(func(l *Library) string { return l.Crossorigin }),
		"known":        boo(func(l *Library) bool { return l.Known }),
		"external":     boo(func(l *Library) bool { return l.External }),
		"sri":          boo(func(l *Library) bool { return l.SRI }),
		"discontinued": boo(func(l *Library) bool { return l.Discontinued }),
	}
}

func findingFields() map[string]fieldSpec {
	str := func(get func(f *Finding) string) fieldSpec {
		return fieldSpec{k: kindString, get: func(e *env) value { return value{kind: kindString, s: get(e.fin)} }}
	}
	boo := func(get func(f *Finding) bool) fieldSpec {
		return fieldSpec{k: kindBool, get: func(e *env) value { return value{kind: kindBool, b: get(e.fin)} }}
	}
	return map[string]fieldSpec{
		"library":  str(func(f *Finding) string { return f.Library }),
		"version":  str(func(f *Finding) string { return f.Version }),
		"advisory": str(func(f *Finding) string { return f.Advisory }),
		"attack":   str(func(f *Finding) string { return f.Attack }),
		"severity": str(func(f *Finding) string { return f.Severity }),
		"fixed_in": str(func(f *Finding) string { return f.FixedIn }),
		"disclosed": {k: kindTime, get: func(e *env) value {
			return value{kind: kindTime, t: e.fin.Disclosed}
		}},
		"patch_available_days": {k: kindNumber, get: func(e *env) value {
			return value{kind: kindNumber, n: float64(e.fin.PatchAvailableDays)}
		}},
		"per_cve_only": boo(func(f *Finding) bool { return f.PerCVEOnly }),
		"conditional":  boo(func(f *Finding) bool { return f.Conditional }),
	}
}
