package policy

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var testNow = time.Date(2026, time.January, 2, 12, 0, 0, 0, time.UTC)

// testDoc models the paper's headline bad page: outdated jQuery with a
// long-public high-severity advisory, an external versionless script, a
// discontinued library, and Flash.
func testDoc() *Doc {
	return &Doc{
		Host: "example.com",
		Libraries: []Library{
			{Slug: "jquery", Known: true, Version: "1.12.4", External: true, Host: "code.jquery.com"},
			{Slug: "swfobject", Known: true, Version: "2.2", Discontinued: true},
			{Slug: "unknownlib", External: true, Host: "cdn.example.net"},
		},
		Findings: []Finding{
			{
				Library: "jquery", Version: "1.12.4", Advisory: "CVE-2020-11023",
				Attack: "XSS", Severity: "high",
				Disclosed:          time.Date(2020, 4, 29, 0, 0, 0, 0, time.UTC),
				FixedIn:            "3.5.0",
				PatchAvailableDays: 2074,
			},
			{
				Library: "jquery", Version: "1.12.4", Advisory: "CVE-2015-9251",
				Attack: "XSS", Severity: "high",
				Disclosed: time.Date(2018, 1, 18, 0, 0, 0, 0, time.UTC),
				FixedIn:   "3.0.0",
			},
		},
		VulnerableTVV: true,
		VulnerableCVE: true,
		MissingSRI:    2,
		ScriptCount:   4,
		UsesFlash:     true,
		InsecureFlash: true,
		Now:           testNow,
	}
}

// ciGateYAML exercises every motivating rule from the issue plus scope
// mixing and warn levels.
const ciGateYAML = `
# The CI gate the issue sketches.
name: ci gate
rules:
  - name: stale-high
    level: fail
    scope: finding
    when: severity == "high" && age(disclosed) > 90d
    msg: a high-severity advisory has had the fix out for over 90 days
  - name: versionless-external
    level: fail
    scope: library
    when: external && version == ""
  - name: discontinued
    level: warn
    scope: library
    when: discontinued
  - name: flash
    level: warn
    when: uses_flash
`

func TestCompileAndEvalYAML(t *testing.T) {
	p, err := Compile([]byte(ciGateYAML))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "ci gate" || len(p.Rules) != 4 {
		t.Fatalf("policy = %+v", p)
	}
	v := p.Eval(testDoc())
	if v.Overall != "fail" {
		t.Fatalf("overall = %q, want fail: %+v", v.Overall, v)
	}
	byName := map[string]RuleVerdict{}
	for _, rv := range v.Rules {
		byName[rv.Rule] = rv
	}
	if rv := byName["stale-high"]; rv.Outcome != "fail" || rv.Matched != 2 {
		t.Errorf("stale-high = %+v, want fail with 2 matches", rv)
	}
	if rv := byName["stale-high"]; len(rv.Detail) != 2 || rv.Detail[0] != "jquery@1.12.4 CVE-2020-11023" {
		t.Errorf("stale-high detail = %v", rv.Detail)
	}
	if rv := byName["versionless-external"]; rv.Outcome != "fail" || rv.Matched != 1 || rv.Detail[0] != "unknownlib" {
		t.Errorf("versionless-external = %+v", rv)
	}
	if rv := byName["discontinued"]; rv.Outcome != "warn" || rv.Detail[0] != "swfobject@2.2" {
		t.Errorf("discontinued = %+v", rv)
	}
	if rv := byName["flash"]; rv.Outcome != "warn" || rv.Matched != 1 {
		t.Errorf("flash = %+v", rv)
	}
}

func TestCleanDocPasses(t *testing.T) {
	p, err := Compile([]byte(ciGateYAML))
	if err != nil {
		t.Fatal(err)
	}
	v := p.Eval(&Doc{Host: "clean.test", Now: testNow})
	if v.Overall != "pass" {
		t.Fatalf("overall = %q, want pass: %+v", v.Overall, v)
	}
	for _, rv := range v.Rules {
		if rv.Outcome != "pass" || rv.Matched != 0 || rv.Msg != "" {
			t.Errorf("rule %+v should pass silently", rv)
		}
	}
}

func TestWarnOnlyOverall(t *testing.T) {
	p, err := Compile([]byte("rules:\n  - name: w\n    level: warn\n    when: uses_flash\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Eval(&Doc{UsesFlash: true, Now: testNow}); v.Overall != "warn" {
		t.Fatalf("overall = %q, want warn", v.Overall)
	}
}

func TestCompileJSON(t *testing.T) {
	src := `{"name":"j","rules":[{"name":"r","scope":"finding","when":"patch_available_days > 365"}]}`
	p, err := Compile([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	v := p.Eval(testDoc())
	if v.Overall != "fail" || v.Rules[0].Matched != 1 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestEvalDeterministicBytes(t *testing.T) {
	p, err := Compile([]byte(ciGateYAML))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(p.Eval(testDoc()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := json.Marshal(p.Eval(testDoc()))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("verdict bytes differ between evaluations:\n%s\n%s", a, b)
		}
	}
}

func TestPagePrefixInItemScopes(t *testing.T) {
	p, err := Compile([]byte(`{"rules":[{"name":"x","scope":"library","when":"external && page.missing_sri > 0"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Eval(testDoc()); v.Rules[0].Matched != 2 {
		t.Fatalf("matched = %d, want 2", v.Rules[0].Matched)
	}
}

func TestExpressionOperators(t *testing.T) {
	doc := testDoc()
	cases := []struct {
		scope, when string
		matched     int
	}{
		{"page", `missing_sri >= 2 && script_count < 5`, 1},
		{"page", `host contains "example"`, 1},
		{"page", `host startswith "ex"`, 1},
		{"page", `!vulnerable_tvv || insecure_flash`, 1},
		{"page", `wordpress != ""`, 0},
		{"page", `(uses_flash && !insecure_flash) || missing_sri == 3`, 0},
		{"library", `slug == "jquery" && host contains "jquery.com"`, 1},
		{"library", `known == false`, 1},
		{"finding", `age(disclosed) > 2000d && severity == "high"`, 2},
		{"finding", `age(disclosed) < 36500h`, 0}, // both advisories older than ~4.2y
		{"finding", `fixed_in == ""`, 0},
		{"finding", `advisory startswith "CVE-2015"`, 1},
		{"finding", `per_cve_only`, 0},
	}
	for _, tc := range cases {
		src := `{"rules":[{"name":"t","scope":"` + tc.scope + `","when":` + jsonStr(tc.when) + `}]}`
		p, err := Compile([]byte(src))
		if err != nil {
			t.Errorf("%s: %v", tc.when, err)
			continue
		}
		if v := p.Eval(doc); v.Rules[0].Matched != tc.matched {
			t.Errorf("%s scope %s: matched = %d, want %d", tc.scope, tc.when, v.Rules[0].Matched, tc.matched)
		}
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestAgeOfZeroDateNeverFires(t *testing.T) {
	p, err := Compile([]byte(`{"rules":[{"name":"t","scope":"finding","when":"age(disclosed) > 1d"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	doc := &Doc{Findings: []Finding{{Advisory: "X", Severity: "high"}}, Now: testNow}
	if v := p.Eval(doc); v.Rules[0].Matched != 0 {
		t.Fatal("age() of a zero date must not match")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "empty source"},
		{"no rules", "name: x\n", "no rules"},
		{"bad level", `{"rules":[{"name":"r","level":"abort","when":"true"}]}`, "level"},
		{"bad scope", `{"rules":[{"name":"r","scope":"galaxy","when":"true"}]}`, "scope"},
		{"no when", `{"rules":[{"name":"r"}]}`, "missing when"},
		{"dup name", `{"rules":[{"name":"r","when":"uses_flash"},{"name":"r","when":"uses_flash"}]}`, "duplicate"},
		{"unknown field", `{"rules":[{"name":"r","when":"entropy > 3"}]}`, "unknown field"},
		{"item field in page scope", `{"rules":[{"name":"r","when":"severity == \"high\""}]}`, "unknown field"},
		{"type clash", `{"rules":[{"name":"r","when":"missing_sri == \"two\""}]}`, "cannot compare"},
		{"string order", `{"rules":[{"name":"r","scope":"library","when":"version < \"3.0.0\""}]}`, "version strings do not order"},
		{"non-bool expr", `{"rules":[{"name":"r","when":"missing_sri"}]}`, "not a predicate"},
		{"bare time", `{"rules":[{"name":"r","scope":"finding","when":"disclosed == disclosed"}]}`, "age()"},
		{"unterminated string", `{"rules":[{"name":"r","when":"host == \"x"}]}`, "unterminated"},
		{"trailing junk", `{"rules":[{"name":"r","when":"uses_flash extra"}]}`, "unexpected"},
		{"bad duration", `{"rules":[{"name":"r","scope":"finding","when":"age(disclosed) > 90x"}]}`, "bad duration"},
		{"age of string", `{"rules":[{"name":"r","scope":"finding","when":"age(advisory) > 1d"}]}`, "want a date"},
		{"yaml tab indent", "rules:\n\t- name: r\n", "tabs"},
		{"yaml unknown key", "rules:\n  - name: r\n    danger: yes\n", "unknown rule key"},
		{"yaml top-level junk", "version: 2\n", "unknown top-level key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile([]byte(tc.src))
			if err == nil {
				t.Fatalf("compile accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRuleCountCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"rules":[`)
	for i := 0; i < maxRules+1; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"name":"r` + strings.Repeat("x", i%7) + string(rune('a'+i%26)) + jsonNum(i) + `","when":"uses_flash"}`)
	}
	sb.WriteString(`]}`)
	if _, err := Compile([]byte(sb.String())); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v, want rule-cap error", err)
	}
}

func jsonNum(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}

func TestSourceSizeCap(t *testing.T) {
	big := append([]byte(`{"rules":[{"name":"r","when":"`), make([]byte, MaxSourceBytes)...)
	if _, err := Compile(big); err == nil || !strings.Contains(err.Error(), "larger") {
		t.Fatalf("err = %v, want size-cap error", err)
	}
}

func TestYAMLCommentAndQuotes(t *testing.T) {
	src := "name: \"quoted name\"  # trailing comment\nrules:\n" +
		"  - name: 'r'\n" +
		"    when: host contains \"#fragment\" # comment after quoted hash\n"
	p, err := Compile([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "quoted name" {
		t.Errorf("name = %q", p.Name)
	}
	if p.Rules[0].When != `host contains "#fragment"` {
		t.Errorf("when = %q", p.Rules[0].When)
	}
}

// TestConcurrentEval pins that one compiled policy is safe for concurrent
// evaluation (run under -race).
func TestConcurrentEval(t *testing.T) {
	p, err := Compile([]byte(ciGateYAML))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Verdict, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- p.Eval(testDoc()) }()
	}
	want, _ := json.Marshal(p.Eval(testDoc()))
	for i := 0; i < 8; i++ {
		got, _ := json.Marshal(<-done)
		if string(got) != string(want) {
			t.Fatal("concurrent eval diverged")
		}
	}
}
