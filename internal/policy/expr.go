package policy

// The policy expression language: a deliberately small, linear-time
// predicate grammar evaluated against one audit document (or one of its
// libraries/findings). The design mirrors mcptrust's CEL stance — no
// user-supplied regular expressions at all, so there is nothing to
// backtrack catastrophically — but goes further: the only operations are
// field reads, constant comparisons, substring scans, and duration
// arithmetic, every one of them O(input) with no allocation on the eval
// path. Expressions are compiled once (lexer → recursive-descent parser →
// type-checked AST) and evaluated per record.
//
// Grammar:
//
//	expr    = or
//	or      = and { "||" and }
//	and     = unary { "&&" unary }
//	unary   = "!" unary | primary
//	primary = "(" expr ")" | comparison
//	comparison = operand [ op operand ]
//	op      = "==" | "!=" | "<" | "<=" | ">" | ">=" | "contains" | "startswith"
//	operand = field | "age" "(" field ")" | literal
//	literal = string | number | duration | "true" | "false"
//
// Types: string, number, bool, duration, time. Comparisons are
// type-checked at compile time; a bare bool field is a predicate by
// itself; `age(f)` turns a time field into the duration since f as of the
// document's evaluation clock. Duration literals use Go syntax plus a `d`
// day unit (90d, 12h, 30m). String order comparisons (<, <=, >, >=) are
// rejected at compile time — byte order on version strings is a trap, and
// refusing is better than silently lying.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// valueKind tags the static type of an expression node.
type valueKind int

const (
	kindInvalid valueKind = iota
	kindBool
	kindString
	kindNumber
	kindDuration
	kindTime
)

func (k valueKind) String() string {
	switch k {
	case kindBool:
		return "bool"
	case kindString:
		return "string"
	case kindNumber:
		return "number"
	case kindDuration:
		return "duration"
	case kindTime:
		return "time"
	}
	return "invalid"
}

// value is one evaluated operand. Exactly one field is meaningful,
// selected by kind.
type value struct {
	kind valueKind
	b    bool
	s    string
	n    float64
	d    time.Duration
	t    time.Time
}

// env is the evaluation context: the document plus, for library/finding
// scoped rules, the current item.
type env struct {
	doc *Doc
	lib *Library
	fin *Finding
}

// node is a compiled expression node. All nodes are immutable after
// compile, so one compiled policy is safe for concurrent evaluation.
type node interface {
	eval(e *env) value
	kind() valueKind
}

// litNode is a constant.
type litNode struct{ v value }

func (n *litNode) eval(*env) value { return n.v }
func (n *litNode) kind() valueKind { return n.v.kind }

// fieldNode reads one document/item field through its resolved accessor.
type fieldNode struct {
	name string
	k    valueKind
	get  func(e *env) value
}

func (n *fieldNode) eval(e *env) value { return n.get(e) }
func (n *fieldNode) kind() valueKind   { return n.k }

// ageNode is age(f): doc.Now minus a time field.
type ageNode struct{ f *fieldNode }

func (n *ageNode) eval(e *env) value {
	t := n.f.eval(e).t
	if t.IsZero() {
		// A zero date ages to zero, not to "since year 1": rules like
		// age(disclosed) > 90d must not fire on absent dates.
		return value{kind: kindDuration}
	}
	return value{kind: kindDuration, d: e.doc.Now.Sub(t)}
}
func (n *ageNode) kind() valueKind { return kindDuration }

// notNode negates a bool expression.
type notNode struct{ x node }

func (n *notNode) eval(e *env) value { return value{kind: kindBool, b: !n.x.eval(e).b} }
func (n *notNode) kind() valueKind   { return kindBool }

// boolOpNode is && / || with short-circuit evaluation.
type boolOpNode struct {
	and  bool
	l, r node
}

func (n *boolOpNode) eval(e *env) value {
	l := n.l.eval(e).b
	if n.and {
		if !l {
			return value{kind: kindBool}
		}
		return value{kind: kindBool, b: n.r.eval(e).b}
	}
	if l {
		return value{kind: kindBool, b: true}
	}
	return value{kind: kindBool, b: n.r.eval(e).b}
}
func (n *boolOpNode) kind() valueKind { return kindBool }

// cmpNode compares two operands of one already-checked kind.
type cmpNode struct {
	op   string
	k    valueKind // operand kind, not result kind
	l, r node
}

func (n *cmpNode) kind() valueKind { return kindBool }

func (n *cmpNode) eval(e *env) value {
	l, r := n.l.eval(e), n.r.eval(e)
	var b bool
	switch n.op {
	case "contains":
		b = strings.Contains(l.s, r.s)
	case "startswith":
		b = strings.HasPrefix(l.s, r.s)
	case "==", "!=":
		var eq bool
		switch n.k {
		case kindString:
			eq = l.s == r.s
		case kindNumber:
			eq = l.n == r.n
		case kindBool:
			eq = l.b == r.b
		case kindDuration:
			eq = l.d == r.d
		}
		b = eq == (n.op == "==")
	default: // < <= > >= over numbers and durations
		var lf, rf float64
		if n.k == kindDuration {
			lf, rf = float64(l.d), float64(r.d)
		} else {
			lf, rf = l.n, r.n
		}
		switch n.op {
		case "<":
			b = lf < rf
		case "<=":
			b = lf <= rf
		case ">":
			b = lf > rf
		case ">=":
			b = lf >= rf
		}
	}
	return value{kind: kindBool, b: b}
}

// ---- lexer ----

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokDuration
	tokOp // == != < <= > >= && || ! ( )
)

type token struct {
	kind tokKind
	text string
	num  float64
	dur  time.Duration
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// maxExprLen bounds a single expression; inline client policies go through
// this, so it doubles as an abuse cap.
const maxExprLen = 4096

func lex(src string) ([]token, error) {
	if len(src) > maxExprLen {
		return nil, fmt.Errorf("expression longer than %d bytes", maxExprLen)
	}
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			if err := l.lexNumberOrDuration(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			word := l.src[start:l.pos]
			switch word {
			case "contains", "startswith":
				l.toks = append(l.toks, token{kind: tokOp, text: word, pos: start})
			default:
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: len(src)})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("unterminated string at offset %d", start)
}

func (l *lexer) lexNumberOrDuration() error {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	numEnd := l.pos
	// A trailing unit makes it a duration: d, h, m, s, ms, us, ns.
	for l.pos < len(l.src) && (l.src[l.pos] >= 'a' && l.src[l.pos] <= 'z') {
		l.pos++
	}
	if unit := l.src[numEnd:l.pos]; unit != "" {
		d, err := parseDuration(l.src[start:numEnd], unit)
		if err != nil {
			return fmt.Errorf("bad duration %q at offset %d: %v", l.src[start:l.pos], start, err)
		}
		l.toks = append(l.toks, token{kind: tokDuration, dur: d, text: l.src[start:l.pos], pos: start})
		return nil
	}
	n, err := strconv.ParseFloat(l.src[start:numEnd], 64)
	if err != nil {
		return fmt.Errorf("bad number %q at offset %d", l.src[start:numEnd], start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, num: n, text: l.src[start:numEnd], pos: start})
	return nil
}

// parseDuration handles Go units plus "d" (days, 24h — policy rules speak
// in days; the paper's windows are day-denominated).
func parseDuration(num, unit string) (time.Duration, error) {
	if unit == "d" {
		f, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, err
		}
		return time.Duration(f * 24 * float64(time.Hour)), nil
	}
	return time.ParseDuration(num + unit)
}

func (l *lexer) lexOp() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		l.toks = append(l.toks, token{kind: tokOp, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '<', '>', '!', '(', ')':
		l.toks = append(l.toks, token{kind: tokOp, text: string(c), pos: l.pos})
		l.pos++
		return nil
	default:
		return fmt.Errorf("unexpected character %q at offset %d", string(c), l.pos)
	}
}

// ---- parser ----

type parser struct {
	toks   []token
	i      int
	fields map[string]fieldSpec
}

type fieldSpec struct {
	k   valueKind
	get func(e *env) value
}

func compileExpr(src string, fields map[string]fieldSpec) (node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, fields: fields}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("unexpected %q at offset %d", p.cur().text, p.cur().pos)
	}
	if n.kind() != kindBool {
		return nil, fmt.Errorf("expression is %s, not a predicate", n.kind())
	}
	return n, nil
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) accept(text string) bool {
	if p.cur().kind == tokOp && p.cur().text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseOr() (node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		if l.kind() != kindBool {
			return nil, fmt.Errorf("left of || is %s, want bool", l.kind())
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if r.kind() != kindBool {
			return nil, fmt.Errorf("right of || is %s, want bool", r.kind())
		}
		l = &boolOpNode{and: false, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		if l.kind() != kindBool {
			return nil, fmt.Errorf("left of && is %s, want bool", l.kind())
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if r.kind() != kindBool {
			return nil, fmt.Errorf("right of && is %s, want bool", r.kind())
		}
		l = &boolOpNode{and: true, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.accept("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if x.kind() != kindBool {
			return nil, fmt.Errorf("! applies to bool, not %s", x.kind())
		}
		return &notNode{x: x}, nil
	}
	if p.accept("(") {
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("missing ) at offset %d", p.cur().pos)
		}
		return x, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
	"contains": true, "startswith": true,
}

func (p *parser) parseComparison() (node, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokOp || !cmpOps[t.text] {
		// A bare operand: only bool fields stand alone.
		return l, nil
	}
	p.i++
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	lk, rk := l.kind(), r.kind()
	if lk != rk {
		return nil, fmt.Errorf("cannot compare %s with %s near offset %d", lk, rk, t.pos)
	}
	switch t.text {
	case "contains", "startswith":
		if lk != kindString {
			return nil, fmt.Errorf("%s applies to strings, not %s", t.text, lk)
		}
	case "<", "<=", ">", ">=":
		if lk != kindNumber && lk != kindDuration {
			return nil, fmt.Errorf("%s applies to numbers and durations, not %s (version strings do not order bytewise)", t.text, lk)
		}
	default: // == !=
		if lk == kindTime {
			return nil, fmt.Errorf("compare times via age(), not directly")
		}
	}
	return &cmpNode{op: t.text, k: lk, l: l, r: r}, nil
}

func (p *parser) parseOperand() (node, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.i++
		return &litNode{v: value{kind: kindString, s: t.text}}, nil
	case tokNumber:
		p.i++
		return &litNode{v: value{kind: kindNumber, n: t.num}}, nil
	case tokDuration:
		p.i++
		return &litNode{v: value{kind: kindDuration, d: t.dur}}, nil
	case tokIdent:
		p.i++
		switch t.text {
		case "true":
			return &litNode{v: value{kind: kindBool, b: true}}, nil
		case "false":
			return &litNode{v: value{kind: kindBool}}, nil
		case "age":
			if !p.accept("(") {
				return nil, fmt.Errorf("age requires (field) at offset %d", t.pos)
			}
			ft := p.cur()
			if ft.kind != tokIdent {
				return nil, fmt.Errorf("age() wants a field name at offset %d", ft.pos)
			}
			p.i++
			if !p.accept(")") {
				return nil, fmt.Errorf("missing ) after age(%s", ft.text)
			}
			f, err := p.resolveField(ft)
			if err != nil {
				return nil, err
			}
			if f.k != kindTime {
				return nil, fmt.Errorf("age(%s): field is %s, want a date", ft.text, f.k)
			}
			return &ageNode{f: f}, nil
		}
		return p.resolveField(t)
	}
	return nil, fmt.Errorf("unexpected %q at offset %d", t.text, t.pos)
}

func (p *parser) resolveField(t token) (*fieldNode, error) {
	spec, ok := p.fields[t.text]
	if !ok {
		return nil, fmt.Errorf("unknown field %q in this scope at offset %d", t.text, t.pos)
	}
	return &fieldNode{name: t.text, k: spec.k, get: spec.get}, nil
}
