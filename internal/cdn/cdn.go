// Package cdn models the delivery infrastructure of externally-hosted
// JavaScript libraries: the CDN hosts observed in the paper (Table 5), the
// version-control "untrustful" hosts of Section 6.5 / Table 6, and the URL
// shapes each host serves libraries under.
//
// It is used from two independent directions: the ecosystem generator builds
// URLs with it, and the fingerprint engine classifies hosts with it. Version
// extraction from the URL itself is deliberately NOT here — that is the
// fingerprint engine's job, working from the raw URL text as Wappalyzer does.
package cdn

import (
	"fmt"
	"strings"
)

// HostKind classifies a serving host for the trust analysis of Section 6.5.
type HostKind int

// Host kinds.
const (
	// HostUnknown is any host not in the catalog (e.g. the site itself).
	HostUnknown HostKind = iota
	// HostOfficialCDN is a CDN operated by the library project or a major
	// vendor (code.jquery.com, ajax.googleapis.com, ...).
	HostOfficialCDN
	// HostPublicCDN is a free public CDN hosting open-source projects
	// (cdnjs, jsDelivr, unpkg).
	HostPublicCDN
	// HostPlatformCDN is a website-platform CDN (wp.com, shopify,
	// secureservercdn, parastorage).
	HostPlatformCDN
	// HostVersionControl is a collaborative version-control pages host
	// (github.io, raw.githubusercontent.com, gitlab.io, bitbucket.io) —
	// the "untrustful sources" of Section 6.5.
	HostVersionControl
)

func (k HostKind) String() string {
	switch k {
	case HostOfficialCDN:
		return "official-cdn"
	case HostPublicCDN:
		return "public-cdn"
	case HostPlatformCDN:
		return "platform-cdn"
	case HostVersionControl:
		return "version-control"
	}
	return "unknown"
}

// knownHosts is the host catalog. Suffix matching is used for *.github.io
// style hosts.
var knownHosts = map[string]HostKind{
	"ajax.googleapis.com":        HostOfficialCDN,
	"code.jquery.com":            HostOfficialCDN,
	"cdnjs.cloudflare.com":       HostPublicCDN,
	"cdn.jsdelivr.net":           HostPublicCDN,
	"unpkg.com":                  HostPublicCDN,
	"maxcdn.bootstrapcdn.com":    HostOfficialCDN,
	"stackpath.bootstrapcdn.com": HostOfficialCDN,
	"c0.wp.com":                  HostPlatformCDN,
	"s0.wp.com":                  HostPlatformCDN,
	"cdn.shopify.com":            HostPlatformCDN,
	"secureservercdn.net":        HostPlatformCDN,
	"static.parastorage.com":     HostPlatformCDN,
	"cdn.polyfill.io":            HostOfficialCDN,
	"polyfill.io":                HostOfficialCDN,
	"momentjs.com":               HostOfficialCDN,
	"widget.trustpilot.com":      HostPlatformCDN,
	"cdn.prestosports.com":       HostPlatformCDN,
	"strato-editor.com":          HostPlatformCDN,
	"raw.githubusercontent.com":  HostVersionControl,
	"assets-cdn.github.com":      HostVersionControl,
}

var versionControlSuffixes = []string{
	".github.io", ".github.com", ".gitlab.io", ".bitbucket.io",
}

// Classify returns the HostKind for a hostname.
func Classify(host string) HostKind {
	host = strings.ToLower(host)
	if k, ok := knownHosts[host]; ok {
		return k
	}
	for _, suf := range versionControlSuffixes {
		if strings.HasSuffix(host, suf) {
			return HostVersionControl
		}
	}
	return HostUnknown
}

// IsCDN reports whether host is any kind of content-delivery host (official,
// public, or platform). The paper's "delivered by CDNs" metric counts these.
func IsCDN(host string) bool {
	switch Classify(host) {
	case HostOfficialCDN, HostPublicCDN, HostPlatformCDN:
		return true
	}
	return false
}

// IsVersionControl reports whether host is a collaborative version-control
// pages host (the untrustful sources of Section 6.5).
func IsVersionControl(host string) bool { return Classify(host) == HostVersionControl }

// HostWeight is one (host, weight) option for serving a library.
type HostWeight struct {
	Host   string
	Weight int
}

// HostsForLibrary returns the weighted external host mix per library slug,
// calibrated to Table 5 of the paper. The weights are relative; hosts not
// listed for a library get no traffic from the generator. Every library also
// receives a small version-control share to exercise the Section 6.5
// analysis.
var HostsForLibrary = map[string][]HostWeight{
	"jquery": {
		{"ajax.googleapis.com", 26}, {"code.jquery.com", 10},
		{"cdnjs.cloudflare.com", 7}, {"cdn.jsdelivr.net", 2},
	},
	"jquery-migrate": {
		{"c0.wp.com", 22}, {"cdnjs.cloudflare.com", 5},
		{"secureservercdn.net", 2},
	},
	"bootstrap": {
		{"maxcdn.bootstrapcdn.com", 34}, {"widget.trustpilot.com", 10},
		{"stackpath.bootstrapcdn.com", 10}, {"cdnjs.cloudflare.com", 4},
	},
	"jquery-ui": {
		{"ajax.googleapis.com", 50}, {"code.jquery.com", 31},
		{"cdnjs.cloudflare.com", 4},
	},
	"modernizr": {
		{"cdnjs.cloudflare.com", 32}, {"cdn.shopify.com", 22},
		{"cdn.prestosports.com", 1},
	},
	"js-cookie": {
		{"cdn.jsdelivr.net", 21}, {"c0.wp.com", 12},
		{"cdnjs.cloudflare.com", 12},
	},
	"underscore": {
		{"c0.wp.com", 21}, {"cdnjs.cloudflare.com", 13},
		{"secureservercdn.net", 2},
	},
	"isotope": {
		{"secureservercdn.net", 3}, {"cdn.shopify.com", 2},
		{"cdn.jsdelivr.net", 1},
	},
	"popper": {
		{"cdnjs.cloudflare.com", 77}, {"cdn.jsdelivr.net", 9},
		{"unpkg.com", 2},
	},
	"moment": {
		{"cdnjs.cloudflare.com", 52}, {"cdn.jsdelivr.net", 6},
		{"momentjs.com", 2},
	},
	"requirejs": {
		{"cdnjs.cloudflare.com", 30}, {"cdn.jsdelivr.net", 5},
	},
	"swfobject": {
		{"ajax.googleapis.com", 49}, {"cdnjs.cloudflare.com", 3},
		{"s0.wp.com", 3},
	},
	"prototype": {
		{"ajax.googleapis.com", 28}, {"strato-editor.com", 4},
		{"cdnjs.cloudflare.com", 2},
	},
	"jquery-cookie": {
		{"cdnjs.cloudflare.com", 63}, {"cdn.shopify.com", 8},
		{"c0.wp.com", 1},
	},
	"polyfill": {
		{"polyfill.io", 45}, {"cdn.polyfill.io", 31},
		{"static.parastorage.com", 4},
	},
}

// fileBase maps library slug to its conventional file base name.
var fileBase = map[string]string{
	"jquery":         "jquery",
	"jquery-migrate": "jquery-migrate",
	"bootstrap":      "bootstrap",
	"jquery-ui":      "jquery-ui",
	"modernizr":      "modernizr",
	"js-cookie":      "js.cookie",
	"underscore":     "underscore",
	"isotope":        "isotope.pkgd",
	"popper":         "popper",
	"moment":         "moment",
	"requirejs":      "require",
	"swfobject":      "swfobject",
	"prototype":      "prototype",
	"jquery-cookie":  "jquery.cookie",
	"polyfill":       "polyfill",
}

// FileBase returns the conventional minified file base name for a library
// slug ("jquery" → "jquery", "js-cookie" → "js.cookie").
func FileBase(lib string) string {
	if b, ok := fileBase[lib]; ok {
		return b
	}
	return lib
}

// URL builds the script URL a given host serves (lib, version) under,
// reproducing each host's real path shape. Unknown hosts get a generic
// versioned path.
func URL(host, lib, version string) string {
	base := FileBase(lib)
	switch host {
	case "ajax.googleapis.com":
		return fmt.Sprintf("https://%s/ajax/libs/%s/%s/%s.min.js", host, lib, version, base)
	case "code.jquery.com":
		if lib == "jquery-ui" {
			return fmt.Sprintf("https://%s/ui/%s/jquery-ui.min.js", host, version)
		}
		return fmt.Sprintf("https://%s/%s-%s.min.js", host, base, version)
	case "cdnjs.cloudflare.com":
		return fmt.Sprintf("https://%s/ajax/libs/%s/%s/%s.min.js", host, lib, version, base)
	case "cdn.jsdelivr.net":
		return fmt.Sprintf("https://%s/npm/%s@%s/dist/%s.min.js", host, lib, version, base)
	case "unpkg.com":
		return fmt.Sprintf("https://%s/%s@%s/dist/%s.min.js", host, lib, version, base)
	case "maxcdn.bootstrapcdn.com", "stackpath.bootstrapcdn.com":
		return fmt.Sprintf("https://%s/bootstrap/%s/js/bootstrap.min.js", host, version)
	case "c0.wp.com", "s0.wp.com":
		return fmt.Sprintf("https://%s/c/%s/wp-includes/js/%s.min.js", host, version, base)
	case "polyfill.io", "cdn.polyfill.io":
		return fmt.Sprintf("https://%s/v%s/polyfill.min.js", host, version)
	case "momentjs.com":
		return fmt.Sprintf("https://%s/downloads/moment-%s.min.js", host, version)
	default:
		return fmt.Sprintf("https://%s/libs/%s/%s/%s.min.js", host, lib, version, base)
	}
}

// VersionControlURL builds a github.io-style URL. Such URLs typically carry
// no version information, which is itself a finding the analysis preserves.
func VersionControlURL(repo, lib string) string {
	return fmt.Sprintf("https://%s.github.io/%s/%s.min.js", repo, lib, FileBase(lib))
}

// GitHubRepos is a pool of repository owners used for Section 6.5 / Table 6
// style inclusions, seeded from the repositories the paper observed.
var GitHubRepos = []string{
	"partnercoll", "kodir2", "blueimp", "malsup", "hammerjs",
	"radioafricagroup", "klevron", "afarkas", "owlcarousel2",
	"jonathantneal", "malihu", "weblion777", "kenwheeler", "gitcdn",
	"hayageek", "actlz", "wp-r",
}
