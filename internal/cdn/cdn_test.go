package cdn

import (
	"net/url"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := map[string]HostKind{
		"ajax.googleapis.com":       HostOfficialCDN,
		"code.jquery.com":           HostOfficialCDN,
		"cdnjs.cloudflare.com":      HostPublicCDN,
		"cdn.jsdelivr.net":          HostPublicCDN,
		"c0.wp.com":                 HostPlatformCDN,
		"cdn.shopify.com":           HostPlatformCDN,
		"blueimp.github.io":         HostVersionControl,
		"raw.githubusercontent.com": HostVersionControl,
		"foo.gitlab.io":             HostVersionControl,
		"news123.com":               HostUnknown,
		"CODE.JQUERY.COM":           HostOfficialCDN, // case-insensitive
	}
	for host, want := range cases {
		if got := Classify(host); got != want {
			t.Errorf("Classify(%q) = %v, want %v", host, got, want)
		}
	}
}

func TestIsCDNAndIsVersionControl(t *testing.T) {
	if !IsCDN("ajax.googleapis.com") || !IsCDN("c0.wp.com") || !IsCDN("unpkg.com") {
		t.Error("CDN hosts misclassified")
	}
	if IsCDN("blueimp.github.io") {
		t.Error("github.io is not a CDN")
	}
	if !IsVersionControl("blueimp.github.io") || IsVersionControl("code.jquery.com") {
		t.Error("version-control classification wrong")
	}
}

func TestHostsForLibraryCoversTop15(t *testing.T) {
	libs := []string{
		"jquery", "bootstrap", "jquery-migrate", "jquery-ui", "modernizr",
		"js-cookie", "underscore", "isotope", "popper", "moment",
		"requirejs", "swfobject", "prototype", "jquery-cookie", "polyfill",
	}
	for _, lib := range libs {
		hws, ok := HostsForLibrary[lib]
		if !ok || len(hws) == 0 {
			t.Errorf("no hosts for %q", lib)
			continue
		}
		for _, hw := range hws {
			if hw.Weight <= 0 {
				t.Errorf("%s: host %s has non-positive weight", lib, hw.Host)
			}
			if Classify(hw.Host) == HostUnknown {
				t.Errorf("%s: host %s not in catalog", lib, hw.Host)
			}
		}
	}
}

func TestURLShapes(t *testing.T) {
	cases := []struct {
		host, lib, ver string
		want           string
	}{
		{"ajax.googleapis.com", "jquery", "1.12.4",
			"https://ajax.googleapis.com/ajax/libs/jquery/1.12.4/jquery.min.js"},
		{"code.jquery.com", "jquery", "3.5.1",
			"https://code.jquery.com/jquery-3.5.1.min.js"},
		{"code.jquery.com", "jquery-ui", "1.12.1",
			"https://code.jquery.com/ui/1.12.1/jquery-ui.min.js"},
		{"maxcdn.bootstrapcdn.com", "bootstrap", "3.3.7",
			"https://maxcdn.bootstrapcdn.com/bootstrap/3.3.7/js/bootstrap.min.js"},
		{"cdn.jsdelivr.net", "js-cookie", "2.1.4",
			"https://cdn.jsdelivr.net/npm/js-cookie@2.1.4/dist/js.cookie.min.js"},
		{"polyfill.io", "polyfill", "3",
			"https://polyfill.io/v3/polyfill.min.js"},
		{"c0.wp.com", "jquery-migrate", "1.4.1",
			"https://c0.wp.com/c/1.4.1/wp-includes/js/jquery-migrate.min.js"},
	}
	for _, c := range cases {
		if got := URL(c.host, c.lib, c.ver); got != c.want {
			t.Errorf("URL(%s,%s,%s) = %q, want %q", c.host, c.lib, c.ver, got, c.want)
		}
	}
}

func TestURLsParse(t *testing.T) {
	for lib, hws := range HostsForLibrary {
		for _, hw := range hws {
			raw := URL(hw.Host, lib, "1.2.3")
			u, err := url.Parse(raw)
			if err != nil {
				t.Errorf("URL(%s,%s) = %q: %v", hw.Host, lib, raw, err)
				continue
			}
			if u.Host != hw.Host {
				t.Errorf("URL host = %q, want %q", u.Host, hw.Host)
			}
			if !strings.HasSuffix(u.Path, ".js") {
				t.Errorf("URL path %q does not end in .js", u.Path)
			}
		}
	}
}

func TestVersionControlURL(t *testing.T) {
	u := VersionControlURL("blueimp", "jquery")
	if u != "https://blueimp.github.io/jquery/jquery.min.js" {
		t.Errorf("VersionControlURL = %q", u)
	}
	parsed, err := url.Parse(u)
	if err != nil || !IsVersionControl(parsed.Host) {
		t.Errorf("VC URL host should classify as version control: %v", err)
	}
}

func TestFileBase(t *testing.T) {
	if FileBase("js-cookie") != "js.cookie" {
		t.Error("js-cookie file base")
	}
	if FileBase("unknown-lib") != "unknown-lib" {
		t.Error("unknown lib should fall through")
	}
}

func TestGitHubReposNonEmpty(t *testing.T) {
	if len(GitHubRepos) < 10 {
		t.Errorf("GitHubRepos too small: %d", len(GitHubRepos))
	}
}
