module clientres

go 1.22
