GO ?= go

.PHONY: build test race bench bench-store bench-crawl bench-serve bench-fingerprint bench-bundle check fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-store runs the store-read / fingerprint-memo ablations with
# -benchmem and appends machine-readable results to BENCH_store.json
# (longer measurement: make bench-store BENCHTIME=2s).
bench-store:
	BENCHTIME=$(BENCHTIME) sh scripts/bench_store.sh

# bench-crawl runs the crawl-path throughput ablations (plain vs polite
# resilience layer, plus the distributed plane at 1/2/4 workers) and
# appends fetch-latency/throughput numbers to BENCH_crawl.json (longer
# measurement: make bench-crawl BENCHTIME=2s).
bench-crawl:
	BENCHTIME=$(BENCHTIME) sh scripts/bench_crawl.sh

# bench-serve runs the audit-service load test (cold vs warm response
# cache, closed-loop clients) and appends req/s + p50/p99 audit latency to
# BENCH_serve.json (longer measurement: make bench-serve BENCHTIME=2s).
bench-serve:
	BENCHTIME=$(BENCHTIME) sh scripts/bench_serve.sh

# bench-fingerprint runs the signature-scanner ablations (scan throughput
# over plain/bundled/minified bodies, cold scan vs scan-cache hit) and
# appends machine-readable results to BENCH_fingerprint.json (longer
# measurement: make bench-fingerprint BENCHTIME=2s).
bench-fingerprint:
	BENCHTIME=$(BENCHTIME) sh scripts/bench_fingerprint.sh

# bench-bundle runs the record/replay ablation (plain vs recording crawl,
# plus the zero-network replay crawl) with -benchmem and appends results
# to BENCH_bundle.json (longer measurement: make bench-bundle BENCHTIME=2s).
bench-bundle:
	BENCHTIME=$(BENCHTIME) sh scripts/bench_bundle.sh

# check is the full verification gate: vet + build + race tests + short
# fuzz smoke runs (FUZZTIME=3s by default; override: make check FUZZTIME=30s).
check:
	FUZZTIME=$(FUZZTIME) sh scripts/check.sh

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime 3s ./internal/htmlx
	$(GO) test -run '^$$' -fuzz '^FuzzParseVersion$$' -fuzztime 3s ./internal/semver
	$(GO) test -run '^$$' -fuzz '^FuzzRange$$' -fuzztime 3s ./internal/semver
	$(GO) test -run '^$$' -fuzz '^FuzzAuditHandler$$' -fuzztime 3s ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzSignatureScan$$' -fuzztime 3s ./internal/fingerprint
