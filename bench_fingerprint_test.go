package clientres

// Ablations for the content-signature scanner introduced with bundle-aware
// fingerprinting. BenchmarkSignatureScan measures raw scan throughput over
// the three body populations the crawler actually fetches — banner-carrying
// bundles, banner-stripped minified bundles, and plain standalone library
// files — so the scan cost per fetched byte is a tracked number, not a
// guess. BenchmarkSignatureScanMemo measures the re-crawl case: unchanged
// script bodies hitting the content-hash scan cache instead of re-running
// the scanner. `make bench-fingerprint` runs both and appends
// machine-readable results to BENCH_fingerprint.json.

import (
	"strings"
	"testing"

	"clientres/internal/fingerprint"
	"clientres/internal/htmlx"
	"clientres/internal/webgen"
)

// benchScriptBodies renders week 0 of a generated population and collects
// every same-site script body a crawler would fetch from it.
func benchScriptBodies(b *testing.B, bundling webgen.Bundling) []string {
	b.Helper()
	eco := webgen.New(webgen.Config{Domains: 150, Weeks: 4, Seed: 13, Bundling: bundling})
	var bodies []string
	for i := range eco.Sites {
		html, status := eco.PageHTML(i, 0)
		if status != 200 {
			continue
		}
		for _, src := range htmlx.ScriptSrcs(html) {
			if strings.HasPrefix(src, "//") || strings.Contains(src, "://") {
				continue
			}
			if body, ok := eco.AssetJS(i, 0, src); ok && body != "" {
				bodies = append(bodies, body)
			}
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no script bodies generated")
	}
	return bodies
}

// BenchmarkSignatureScan: scanner throughput (MB/s via SetBytes) per body
// population. "bundled" carries banners, "minified" strips them — the
// banner-anchor path drops out and the scan is code-anchors only.
func BenchmarkSignatureScan(b *testing.B) {
	populations := []struct {
		name     string
		bundling webgen.Bundling
	}{
		{"plain", webgen.Bundling{}},
		{"bundled", webgen.Bundling{Fraction: 1, BannerP: 1}},
		{"minified", webgen.Bundling{Fraction: 1, MinifyP: 1}},
	}
	for _, pop := range populations {
		b.Run(pop.name, func(b *testing.B) {
			bodies := benchScriptBodies(b, pop.bundling)
			var bytes int64
			for _, body := range bodies {
				bytes += int64(len(body))
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, body := range bodies {
					_ = fingerprint.ScanScript(body)
				}
			}
		})
	}
}

// BenchmarkSignatureScanMemo: one simulated re-crawl week of bundled script
// bodies, unchanged from the warmup pass — the dominant case under the
// paper's 531-day mean update delay. "uncached" re-runs the scanner per
// body; "memo" hits the content-hash scan cache.
func BenchmarkSignatureScanMemo(b *testing.B) {
	bodies := benchScriptBodies(b, webgen.Bundling{Fraction: 1, MinifyP: 0.5, BannerP: 0.6, SourceMapP: 0.35})
	var bytes int64
	for _, body := range bodies {
		bytes += int64(len(body))
	}
	b.Run("uncached", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			for _, body := range bodies {
				_ = fingerprint.ScanScript(body)
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		memo := fingerprint.NewMemo(0)
		for _, body := range bodies {
			_ = memo.ScanScript(body) // warm: the previous week's crawl
		}
		b.SetBytes(bytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, body := range bodies {
				_ = memo.ScanScript(body)
			}
		}
	})
}
