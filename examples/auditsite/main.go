// Auditsite: the Retire.js-style single-page scanner built on the study's
// fingerprint engine and CVE/TVV database. Give it an HTML file (or run it
// without arguments to audit a built-in sample) and it reports every
// detected library, the vulnerabilities matching the detected versions —
// under the *validated* true-vulnerable-version ranges, flagging matches
// that exist only under the inaccurate CVE-disclosed ranges — plus SRI and
// Flash hygiene problems.
//
// By default the audit runs in-process. With -serve the page is instead
// POSTed to a running audit service (cmd/serve), which returns the same
// verdicts plus days-since-patch, and exercises the service's cache and
// backpressure path. With -policy the audit is additionally gated by a
// compiled policy file (evaluated in-process, or sent along with the
// request in -serve mode — both produce identical verdicts), and the
// process exits 1 when the overall verdict is "fail":
//
//	go run ./examples/auditsite [-serve http://127.0.0.1:8080] [-policy gate.yaml] [page.html [host]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"clientres"
)

// sample is a page exhibiting the paper's headline problems: the dominant
// outdated jQuery, an old Bootstrap, a missing-integrity CDN include, and a
// leftover Flash embed with AllowScriptAccess=always.
const sample = `<!DOCTYPE html>
<html><head>
<meta name="generator" content="WordPress 5.4">
<script src="/wp-includes/js/jquery/jquery.min.js?ver=1.12.4"></script>
<script src="https://maxcdn.bootstrapcdn.com/bootstrap/3.3.7/js/bootstrap.min.js"></script>
<script src="https://cdnjs.cloudflare.com/ajax/libs/moment/2.10.6/moment.min.js"></script>
</head><body>
<embed src="/media/banner.swf" allowscriptaccess="always" type="application/x-shockwave-flash">
</body></html>`

func main() {
	serve := flag.String("serve", "", "base URL of a running cmd/serve instance; empty audits in-process")
	policyFile := flag.String("policy", "", "policy file (YAML or JSON) gating the audit; exit code 1 when the overall verdict is \"fail\"")
	nowFlag := flag.String("now", "", "audit clock as RFC3339 for -policy verdicts (default wall clock; in -serve mode the server's clock rules)")
	flag.Parse()

	html, host := sample, "example.com"
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatalf("auditsite: %v", err)
		}
		html = string(data)
	}
	if flag.NArg() > 1 {
		host = flag.Arg(1)
	}

	var polSrc []byte
	var pol *clientres.Policy
	if *policyFile != "" {
		src, err := os.ReadFile(*policyFile)
		if err != nil {
			log.Fatalf("auditsite: %v", err)
		}
		if pol, err = clientres.CompilePolicy(src); err != nil {
			log.Fatalf("auditsite: policy %s: %v", *policyFile, err)
		}
		polSrc = src
	}
	var now time.Time
	if *nowFlag != "" {
		t, err := time.Parse(time.RFC3339, *nowFlag)
		if err != nil {
			log.Fatalf("auditsite: bad -now: %v", err)
		}
		now = t
	}

	var rep report
	var verdict *clientres.PolicyVerdict
	if *serve != "" {
		rep, verdict = auditRemote(*serve, html, host, polSrc)
	} else {
		rep = auditLocal(html, host)
		if pol != nil {
			v := clientres.EvalPolicy(pol, html, host, now)
			verdict = &v
		}
	}

	fmt.Printf("detected libraries (%d):\n", len(rep.Libraries))
	for _, lib := range rep.Libraries {
		fmt.Printf("  - %s\n", lib)
	}
	if len(rep.Findings) == 0 {
		fmt.Println("no known vulnerabilities match the detected versions")
	} else {
		fmt.Printf("\nvulnerabilities (%d):\n", len(rep.Findings))
		for _, f := range rep.Findings {
			fix := "no fixed version"
			if f.FixedIn != "" {
				fix = "fixed in " + f.FixedIn
				if f.PatchDays > 0 {
					fix += fmt.Sprintf(", patch available %d days", f.PatchDays)
				}
			}
			note := ""
			if f.PerCVEOnly {
				note = "  [matches the CVE's disclosed range only — the validated range says NOT vulnerable]"
			}
			fmt.Printf("  - %s@%s: %s (%s, disclosed %s, %s)%s\n",
				f.Library, f.Version, f.Advisory, f.Attack, f.Disclosed, fix, note)
		}
	}
	fmt.Println()
	if rep.MissingSRI > 0 {
		fmt.Printf("hygiene: %d external script(s) without an integrity attribute\n", rep.MissingSRI)
	}
	if rep.UsesFlash {
		fmt.Println("hygiene: page embeds Adobe Flash (end-of-life since Jan 2021)")
		if rep.InsecureFlash {
			fmt.Println("hygiene: AllowScriptAccess is 'always' — cross-origin .swf can script this page")
		}
	}
	if verdict != nil {
		fmt.Printf("\npolicy %q: %s\n", verdict.Policy, verdict.Overall)
		for _, rv := range verdict.Rules {
			line := fmt.Sprintf("  [%s] %s", rv.Outcome, rv.Rule)
			if rv.Matched > 0 {
				line += fmt.Sprintf(" (matched %d)", rv.Matched)
			}
			if rv.Msg != "" {
				line += ": " + rv.Msg
			}
			fmt.Println(line)
			for _, d := range rv.Detail {
				fmt.Printf("      - %s\n", d)
			}
		}
		if verdict.Overall == "fail" {
			os.Exit(1)
		}
	}
}

// report is the common shape both audit paths render from. PatchDays is
// only populated by the service, which computes days-since-patch.
type report struct {
	Libraries                []string
	Findings                 []finding
	MissingSRI               int
	UsesFlash, InsecureFlash bool
}

type finding struct {
	Library, Version, Advisory, Attack, Disclosed, FixedIn string
	PatchDays                                              int
	PerCVEOnly                                             bool
}

func auditLocal(html, host string) report {
	rep := clientres.AuditPage(html, host)
	out := report{
		Libraries:     rep.Libraries,
		MissingSRI:    rep.MissingSRI,
		UsesFlash:     rep.UsesFlash,
		InsecureFlash: rep.InsecureFlash,
	}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, finding{
			Library: f.Library, Version: f.Version, Advisory: f.Advisory,
			Attack: f.Attack, Disclosed: f.Disclosed, FixedIn: f.FixedIn,
			PerCVEOnly: f.PerCVEOnly,
		})
	}
	return out
}

// auditRemote POSTs the page to a running audit service and maps its JSON
// response onto the same report the in-process path produces. When polSrc
// is set, the policy source travels with the request and the service
// answers with the {"audit":…,"policy":…} envelope; the returned verdict
// is the server's.
func auditRemote(base, html, host string, polSrc []byte) (report, *clientres.PolicyVerdict) {
	url := strings.TrimRight(base, "/") + "/v1/audit?host=" + host
	var resp *http.Response
	var err error
	if len(polSrc) > 0 {
		reqBody, merr := json.Marshal(struct {
			HTML   string `json:"html"`
			Host   string `json:"host"`
			Policy string `json:"policy"`
		}{HTML: html, Host: host, Policy: string(polSrc)})
		if merr != nil {
			log.Fatalf("auditsite: encode request: %v", merr)
		}
		resp, err = http.Post(url, "application/json", strings.NewReader(string(reqBody)))
	} else {
		resp, err = http.Post(url, "text/html", strings.NewReader(html))
	}
	if err != nil {
		log.Fatalf("auditsite: POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("auditsite: read response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("auditsite: service returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var verdict *clientres.PolicyVerdict
	if len(polSrc) > 0 {
		var env struct {
			Audit  json.RawMessage          `json:"audit"`
			Policy *clientres.PolicyVerdict `json:"policy"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Policy == nil {
			log.Fatalf("auditsite: decode policy envelope: %v", err)
		}
		body, verdict = env.Audit, env.Policy
	}
	var sr struct {
		Libraries []struct {
			Slug    string `json:"slug"`
			Version string `json:"version"`
		} `json:"libraries"`
		Findings []struct {
			Library            string `json:"library"`
			Version            string `json:"version"`
			Advisory           string `json:"advisory"`
			Attack             string `json:"attack"`
			Disclosed          string `json:"disclosed"`
			FixedIn            string `json:"fixed_in"`
			PatchAvailableDays int    `json:"patch_available_days"`
			PerCVEOnly         bool   `json:"per_cve_only"`
		} `json:"findings"`
		MissingSRI    int  `json:"missing_sri"`
		UsesFlash     bool `json:"uses_flash"`
		InsecureFlash bool `json:"insecure_flash"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		log.Fatalf("auditsite: decode response: %v", err)
	}
	out := report{
		MissingSRI:    sr.MissingSRI,
		UsesFlash:     sr.UsesFlash,
		InsecureFlash: sr.InsecureFlash,
	}
	for _, lib := range sr.Libraries {
		label := lib.Slug
		if lib.Version != "" {
			label += "@" + lib.Version
		}
		out.Libraries = append(out.Libraries, label)
	}
	for _, f := range sr.Findings {
		out.Findings = append(out.Findings, finding{
			Library: f.Library, Version: f.Version, Advisory: f.Advisory,
			Attack: f.Attack, Disclosed: f.Disclosed, FixedIn: f.FixedIn,
			PatchDays: f.PatchAvailableDays, PerCVEOnly: f.PerCVEOnly,
		})
	}
	return out, verdict
}
