// Auditsite: the Retire.js-style single-page scanner built on the study's
// fingerprint engine and CVE/TVV database. Give it an HTML file (or run it
// without arguments to audit a built-in sample) and it reports every
// detected library, the vulnerabilities matching the detected versions —
// under the *validated* true-vulnerable-version ranges, flagging matches
// that exist only under the inaccurate CVE-disclosed ranges — plus SRI and
// Flash hygiene problems.
//
//	go run ./examples/auditsite [page.html [host]]
package main

import (
	"fmt"
	"log"
	"os"

	"clientres"
)

// sample is a page exhibiting the paper's headline problems: the dominant
// outdated jQuery, an old Bootstrap, a missing-integrity CDN include, and a
// leftover Flash embed with AllowScriptAccess=always.
const sample = `<!DOCTYPE html>
<html><head>
<meta name="generator" content="WordPress 5.4">
<script src="/wp-includes/js/jquery/jquery.min.js?ver=1.12.4"></script>
<script src="https://maxcdn.bootstrapcdn.com/bootstrap/3.3.7/js/bootstrap.min.js"></script>
<script src="https://cdnjs.cloudflare.com/ajax/libs/moment/2.10.6/moment.min.js"></script>
</head><body>
<embed src="/media/banner.swf" allowscriptaccess="always" type="application/x-shockwave-flash">
</body></html>`

func main() {
	html, host := sample, "example.com"
	if len(os.Args) > 1 {
		data, err := os.ReadFile(os.Args[1])
		if err != nil {
			log.Fatalf("auditsite: %v", err)
		}
		html = string(data)
	}
	if len(os.Args) > 2 {
		host = os.Args[2]
	}

	rep := clientres.AuditPage(html, host)
	fmt.Printf("detected libraries (%d):\n", len(rep.Libraries))
	for _, lib := range rep.Libraries {
		fmt.Printf("  - %s\n", lib)
	}
	if len(rep.Findings) == 0 {
		fmt.Println("no known vulnerabilities match the detected versions")
	} else {
		fmt.Printf("\nvulnerabilities (%d):\n", len(rep.Findings))
		for _, f := range rep.Findings {
			fix := "no fixed version"
			if f.FixedIn != "" {
				fix = "fixed in " + f.FixedIn
			}
			note := ""
			if f.PerCVEOnly {
				note = "  [matches the CVE's disclosed range only — the validated range says NOT vulnerable]"
			}
			fmt.Printf("  - %s@%s: %s (%s, disclosed %s, %s)%s\n",
				f.Library, f.Version, f.Advisory, f.Attack, f.Disclosed, fix, note)
		}
	}
	fmt.Println()
	if rep.MissingSRI > 0 {
		fmt.Printf("hygiene: %d external script(s) without an integrity attribute\n", rep.MissingSRI)
	}
	if rep.UsesFlash {
		fmt.Println("hygiene: page embeds Adobe Flash (end-of-life since Jan 2021)")
		if rep.InsecureFlash {
			fmt.Println("hygiene: AllowScriptAccess is 'always' — cross-origin .swf can script this page")
		}
	}
}
