// Quickstart: run the complete study pipeline end-to-end on a small
// population — generate a synthetic web, serve it over a loopback HTTP
// listener, crawl every weekly snapshot, fingerprint every landing page,
// run the paper's analyses and the CVE validation experiment, and print the
// headline findings.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"clientres"
)

func main() {
	fmt.Println("clientres quickstart: crawling a 300-domain synthetic web for 30 weeks...")
	res, err := clientres.Run(context.Background(), clientres.Config{
		Domains: 300,
		Weeks:   30,
		Seed:    42,
		Crawl:   true, // the real pipeline: HTTP crawl + fingerprinting
		Workers: 32,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\r", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr)

	s := res.Headline()
	fmt.Printf("collected pages/week (mean): %.0f of 300 domains\n", s.MeanCollected)
	fmt.Printf("sites with >=1 vulnerable library: %.1f%% (CVE ranges), %.1f%% (validated TVV ranges)\n",
		s.VulnerableShareCVE*100, s.VulnerableShareTVV*100)
	fmt.Printf("WordPress share: %.1f%%\n", s.WordPressShare*100)
	fmt.Printf("external libraries without Subresource Integrity: %.1f%% of sites\n",
		s.MissingSRIShare*100)
	fmt.Printf("CVE reports with incorrect version info: %d of %d\n",
		s.IncorrectCVEs, s.TotalCVEs)

	// The full paper report (all tables and figures) is one call away:
	fmt.Println("\n--- excerpt of the full report (Table 1) ---")
	// WriteReport prints everything; here we just show it exists.
	// res.WriteReport(os.Stdout) would print ~25 tables/figures.
	fmt.Println("run `go run ./cmd/reprotables` for every table and figure")
}
