// Vulndbdiff: the archival payoff of web-execution bundles. A crawl
// recorded into a bundle can be re-audited years later against a *newer*
// advisory database with zero network — the archive holds the raw bytes,
// so no finding is hostage to what the vulnerability database knew on
// crawl day.
//
// The example records a small ecosystem crawl into a bundle (or mounts an
// existing one), then audits the archived landing pages twice: once under
// the advisory set as it stood at -cutoff (vulndb.AdvisoriesDisclosedBy —
// the compiled-in database's historical view), and once under the full
// current set. The delta table lists every advisory disclosed after the
// cutoff and how many archived pages it affects: vulnerabilities that were
// sitting in the archive all along, invisible until disclosure.
//
//	go run ./examples/vulndbdiff                       # record, then diff
//	go run ./examples/vulndbdiff -bundle crawl.bundle  # diff an existing archive
//	go run ./examples/vulndbdiff -cutoff 2019-06-30 -week 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"clientres"
	"clientres/internal/fingerprint"
	"clientres/internal/vulndb"
	"clientres/internal/wexbundle"
)

func main() {
	bundleDir := flag.String("bundle", "", "existing bundle directory to re-audit; empty records a fresh one into a temp dir")
	domains := flag.Int("domains", 80, "domains to record (without -bundle)")
	weeks := flag.Int("weeks", 6, "weeks to record (without -bundle)")
	seed := flag.Int64("seed", 7, "generation seed (without -bundle)")
	cutoff := flag.String("cutoff", "2019-06-30", "audit-day advisory horizon (YYYY-MM-DD): the database as the crawl's operators knew it")
	week := flag.Int("week", -1, "archived week to re-audit (-1 = the last recorded week)")
	flag.Parse()

	dir := *bundleDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "vulndbdiff-")
		if err != nil {
			log.Fatalf("vulndbdiff: %v", err)
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "crawl.bundle")
		fmt.Printf("recording %d domains x %d weeks into %s ...\n", *domains, *weeks, dir)
		_, err = clientres.Run(context.Background(), clientres.Config{
			Domains: *domains, Weeks: *weeks, Seed: *seed,
			Crawl: true, RecordBundle: dir,
		})
		if err != nil {
			log.Fatalf("vulndbdiff: record: %v", err)
		}
	}

	cut, err := time.Parse("2006-01-02", *cutoff)
	if err != nil {
		log.Fatalf("vulndbdiff: bad -cutoff: %v", err)
	}

	b, err := wexbundle.Mount(dir)
	if err != nil {
		log.Fatalf("vulndbdiff: %v", err)
	}
	recs := b.Records()
	auditWeek := *week
	if auditWeek < 0 {
		for _, r := range recs {
			if r.Week > auditWeek {
				auditWeek = r.Week
			}
		}
	}

	// Re-fingerprint the archived pages of the audit week. Zero network:
	// every byte below comes from the mounted archive.
	old := vulndb.AdvisoriesDisclosedBy(cut)
	oldIDs := make(map[string]bool, len(old))
	for _, a := range old {
		oldIDs[a.ID] = true
	}
	all := vulndb.Advisories()

	type hit struct {
		pages   int
		domains []string
	}
	affected := make(map[string]*hit) // advisory ID -> archived pages it affects
	pages, vulnOld, vulnNew := 0, 0, 0
	for _, rec := range recs {
		if rec.Week != auditWeek || !rec.IsPage() || rec.Status != 200 {
			continue
		}
		pages++
		det := fingerprint.Page(rec.Body, rec.Domain)
		pageOld, pageNew := false, false
		for _, lib := range det.Libraries {
			if !lib.Known || lib.Version.IsZero() {
				continue
			}
			for _, adv := range vulndb.AdvisoriesFor(lib.Slug) {
				if !adv.EffectiveTrueRange().Contains(lib.Version) {
					continue
				}
				pageNew = true
				if oldIDs[adv.ID] {
					pageOld = true
					continue
				}
				h := affected[adv.ID]
				if h == nil {
					h = &hit{}
					affected[adv.ID] = h
				}
				h.pages++
				if len(h.domains) < 3 {
					h.domains = append(h.domains, rec.Domain)
				}
			}
		}
		if pageOld {
			vulnOld++
		}
		if pageNew {
			vulnNew++
		}
	}

	fmt.Printf("re-audit of %s: week %d, %d archived pages, zero network\n", dir, auditWeek, pages)
	fmt.Printf("advisory set: disclosed <= %s held %d advisories; current set holds %d\n\n",
		*cutoff, len(old), len(all))
	fmt.Printf("  %-18s %-12s %-11s %-20s %s\n", "advisory", "library", "disclosed", "attack", "affected pages")

	var rows []vulndb.Advisory
	for _, a := range all {
		if !oldIDs[a.ID] && affected[a.ID] != nil {
			rows = append(rows, a)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Disclosed.Before(rows[j].Disclosed) })
	for _, a := range rows {
		h := affected[a.ID]
		fmt.Printf("  %-18s %-12s %-11s %-20s %6d   (e.g. %s)\n",
			a.ID, a.Lib, a.Disclosed.Format("2006-01-02"), a.Attack, h.pages, h.domains[0])
	}
	if len(rows) == 0 {
		fmt.Println("  (no newly-disclosed advisory affects any archived page)")
	}
	fmt.Printf("\nvulnerable pages under the %s database: %d of %d\n", *cutoff, vulnOld, pages)
	fmt.Printf("vulnerable pages under the current database:  %d of %d (+%d found only by re-auditing the archive)\n",
		vulnNew, pages, vulnNew-vulnOld)
	fmt.Printf("newly-disclosed advisories with matches in the archive: %d\n", len(rows))
}
