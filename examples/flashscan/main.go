// Flashscan: the Section 8 Adobe Flash study on a synthetic population —
// the usage decline through the January 2021 end of life, the rank-band
// breakdown, the insecure AllowScriptAccess share, and the country mix of
// post-EOL holdouts (the paper's China case study).
//
//	go run ./examples/flashscan [-domains N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"clientres"
)

func main() {
	domains := flag.Int("domains", 20000, "population size")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "collecting %d domains x %d weeks...\n", *domains, clientres.StudyWeeks)
	res, err := clientres.Run(context.Background(), clientres.Config{
		Domains: *domains, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	in := res.Collectors()

	all, top10k, top1k := in.Flash.UsageSeries()
	at := func(t time.Time) int {
		return int(t.Sub(clientres.WeekDate(0)) / (7 * 24 * time.Hour))
	}
	checkpoints := []struct {
		label string
		t     time.Time
	}{
		{"Mar 2018 (study start)", time.Date(2018, 3, 5, 0, 0, 0, 0, time.UTC)},
		{"Dec 2020 (pre-EOL)", time.Date(2020, 12, 28, 0, 0, 0, 0, time.UTC)},
		{"Jan 2022 (study end)", time.Date(2022, 1, 3, 0, 0, 0, 0, time.UTC)},
	}
	fmt.Println("Adobe Flash usage (sites):")
	fmt.Printf("  %-24s %8s %10s %10s\n", "", "all", "top-1%", "top-0.1%")
	for _, cp := range checkpoints {
		w := at(cp.t)
		fmt.Printf("  %-24s %8d %10d %10d\n", cp.label, all[w], top10k[w], top1k[w])
	}
	fmt.Printf("\nmean Flash sites after end of life: %.0f (paper: 3,553 of 1M)\n", in.Flash.MeanPostEOL())
	fmt.Printf("insecure AllowScriptAccess='always': %.1f%% of Flash sites on average (paper: 24.7%%)\n",
		in.Flash.MeanInsecureShare()*100)
	fmt.Printf("  trend: %.1f%% early -> %.1f%% late (paper: ~21%% -> ~30%%)\n",
		in.Flash.InsecureShareAt(4)*100, in.Flash.InsecureShareAt(clientres.StudyWeeks-4)*100)

	fmt.Println("\npost-EOL Flash holdouts by operator country:")
	for i, cc := range in.Flash.PostEOLCountries() {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-4s %d domains\n", cc.Country, cc.Domains)
	}
	fmt.Println("\n(The paper traces the China-heavy tail to the 360 Extreme browser and")
	fmt.Println(" flash.cn, the one remaining distribution channel — see Table 3.)")
}
