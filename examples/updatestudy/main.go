// Updatestudy: measure web developers' updating behaviour (Section 7) on a
// synthetic population — the window of vulnerability per advisory, the
// WordPress-driven jQuery 3.5.1 jump of December 2020, and the longer true
// delays once understated CVE ranges are corrected.
//
//	go run ./examples/updatestudy [-domains N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"clientres"
)

func main() {
	domains := flag.Int("domains", 4000, "population size")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "collecting %d domains x %d weeks...\n", *domains, clientres.StudyWeeks)
	res, err := clientres.Run(context.Background(), clientres.Config{
		Domains: *domains, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	in := res.Collectors()

	// Headline windows of vulnerability.
	cve := in.Delay.Result(false, false)
	tvvUnder := in.Delay.Result(true, true)
	fmt.Printf("window of vulnerability (CVE ranges):        %.1f days across %d updated site-advisory pairs (paper: 531.2 days)\n",
		cve.MeanDays, cve.Updated)
	fmt.Printf("window of vulnerability (TVV, understated):  %.1f days (paper: 701.2 days)\n", tvvUnder.MeanDays)
	fmt.Printf("windows still open at the end of the study:  %d\n\n", cve.Censored)

	// Per-advisory breakdown, slowest first.
	type row struct {
		id   string
		days float64
	}
	var rows []row
	for id, days := range cve.PerAdvisory {
		rows = append(rows, row{id, days})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].days > rows[j].days })
	fmt.Println("mean update delay per advisory (CVE ranges):")
	for _, r := range rows {
		fmt.Printf("  %-20s %7.1f days\n", r.id, r.days)
	}

	// The December 2020 WordPress auto-update event (Figure 7).
	jump := func(ver string, t time.Time) int {
		w := weekOf(t)
		return in.Libs.VersionSeries("jquery", ver)[w]
	}
	nov := time.Date(2020, 11, 2, 0, 0, 0, 0, time.UTC)
	mar := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	fmt.Printf("\njQuery 3.5.1 sites: %d (Nov 2020) -> %d (Mar 2021)  [WordPress 5.6 auto-update]\n",
		jump("3.5.1", nov), jump("3.5.1", mar))
	fmt.Printf("jQuery 1.12.4 sites: %d (Nov 2020) -> %d (Mar 2021)\n",
		jump("1.12.4", nov), jump("1.12.4", mar))
}

func weekOf(t time.Time) int {
	return int(t.Sub(clientres.WeekDate(0)) / (7 * 24 * time.Hour))
}
