package clientres

// Ablations for the segmented store and the fingerprint memo cache — the
// two ends of the pipeline PR 1 left serial. BenchmarkStoreReadSegments
// compares a full archive replay through the single sequential gzip
// stream against the segmented parallel readers at 1/2/4/8 segments, for
// both the v2 framed and v3 delta formats (run with -benchmem: the delta
// decoder skips JSON entirely for week-over-week unchanged records, so
// allocs/op drop far below the framed decoder's). BenchmarkStoreDecodeSegment
// isolates the parallelism argument on a single CPU: it decodes ONE
// segment of an N-segment archive, showing per-segment replay cost shrink
// proportionally with segment count — the unit of work a parallel replay
// distributes. BenchmarkFingerprintMemo measures the re-crawl
// fingerprinting cost with and without the content-hash memo — the
// week-over-week unchanged-page case the paper's 531-day mean update
// delay makes dominant. BenchmarkStoreWrite measures the write-path
// durability tax and the delta size win: plain v1, framed v2, and delta
// v3, each without and with per-week commit fsyncs, reporting the final
// archive size as the archive-bytes metric. `make bench-store` runs all
// of them and appends machine-readable results to BENCH_store.json.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"clientres/internal/fingerprint"
	"clientres/internal/store"
	"clientres/internal/webgen"
)

// benchStores materializes the benchmark observation stream as a
// single-file v1 archive plus v2 (framed) and v3 (delta) segmented
// archives at several segment counts, once per process.
var (
	benchStoreOnce sync.Once
	benchStoreDir  string
	benchStoreErr  error
)

func benchStorePaths(b *testing.B) (single string, segmented func(format, segs int) string) {
	obs, _ := benchData(b)
	benchStoreOnce.Do(func() {
		// Not b.TempDir: the archives must survive this benchmark's
		// cleanup so -count=N reruns (and future benchmarks) can reuse
		// them; the OS reaps the temp dir.
		dir, err := os.MkdirTemp("", "clientres-bench-store-")
		if err != nil {
			benchStoreErr = err
			return
		}
		benchStoreDir = dir
		w, err := store.Create(filepath.Join(dir, "obs.jsonl.gz"))
		if err != nil {
			benchStoreErr = err
			return
		}
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				benchStoreErr = err
				return
			}
		}
		if benchStoreErr = w.Close(); benchStoreErr != nil {
			return
		}
		for _, format := range []int{store.FormatFramed, store.FormatDelta} {
			for _, segs := range []int{1, 2, 4, 8} {
				sw, err := store.CreateSegmentedWith(
					filepath.Join(dir, fmt.Sprintf("obs-v%d-%d.store", format, segs)),
					segs, store.SegmentedOptions{Format: format})
				if err != nil {
					benchStoreErr = err
					return
				}
				for _, o := range obs {
					if err := sw.Write(o); err != nil {
						benchStoreErr = err
						return
					}
				}
				if benchStoreErr = sw.Close(); benchStoreErr != nil {
					return
				}
			}
		}
	})
	if benchStoreErr != nil {
		b.Fatal(benchStoreErr)
	}
	return filepath.Join(benchStoreDir, "obs.jsonl.gz"),
		func(format, segs int) string {
			return filepath.Join(benchStoreDir, fmt.Sprintf("obs-v%d-%d.store", format, segs))
		}
}

// BenchmarkStoreReadSegments replays the full archive: the single-file
// sequential decoder versus the parallel per-segment decoders (the
// no-retain fast path core.RunFromStore uses when shards == segments),
// in both the framed and delta formats.
func BenchmarkStoreReadSegments(b *testing.B) {
	single, segmented := benchStorePaths(b)
	count := func(b *testing.B, n int) {
		b.Helper()
		want := len(benchObs)
		if n != want {
			b.Fatalf("replay saw %d observations, want %d", n, want)
		}
	}
	b.Run("single-file", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := store.ForEach(single, func(store.Observation) error {
				n++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			count(b, n)
		}
	})
	for _, format := range []int{store.FormatFramed, store.FormatDelta} {
		for _, segs := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("v%d/segments=%d", format, segs), func(b *testing.B) {
				dir := segmented(format, segs)
				for i := 0; i < b.N; i++ {
					counts := make([]int, segs)
					if err := store.ForEachSegmentedParallel(dir, func(seg int, _ store.Observation) error {
						counts[seg]++
						return nil
					}); err != nil {
						b.Fatal(err)
					}
					n := 0
					for _, c := range counts {
						n += c
					}
					count(b, n)
				}
			})
		}
	}
}

// BenchmarkStoreDecodeSegment decodes segment 0 of an N-segment archive —
// the unit of work one goroutine owns in a parallel replay. On any
// machine (including a single-CPU one where wall-clock parallel speedup
// is invisible) this shows the scaling argument directly: per-segment
// decode cost falls proportionally with segment count, and the v3 delta
// decoder does far less work per record than the v2 framed decoder.
func BenchmarkStoreDecodeSegment(b *testing.B) {
	_, segmented := benchStorePaths(b)
	for _, format := range []int{store.FormatFramed, store.FormatDelta} {
		for _, segs := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("v%d/segments=%d", format, segs), func(b *testing.B) {
				dir := segmented(format, segs)
				for i := 0; i < b.N; i++ {
					n := 0
					if err := store.ForEachSegment(dir, 0, func(store.Observation) error {
						n++
						return nil
					}); err != nil {
						b.Fatal(err)
					}
					if n == 0 {
						b.Fatal("segment 0 replayed empty")
					}
				}
			})
		}
	}
}

// BenchmarkStoreWrite measures the durability tax and size of each write
// path: "plain-v1" is the original unframed single-file archive, "framed"
// the v2 segmented layout with per-record length+checksum frames,
// "delta" the v3 layout with delta-encoded records and member checksums,
// and the -commit variants the fully crash-safe configuration — one
// CommitWeek (segment flush + gzip member close + fsync + atomic
// checkpoint) per collected week. Each variant reports the finished
// archive size as archive-bytes; EXPERIMENTS.md tracks both the time tax
// (budget: under ~10% for framing) and the v3 size win.
func BenchmarkStoreWrite(b *testing.B) {
	obs, weeks := benchData(b)
	perWeek := make([][]store.Observation, weeks)
	for _, o := range obs {
		perWeek[o.Week] = append(perWeek[o.Week], o)
	}
	var bytes int64
	writeAll := func(b *testing.B, w store.Sink) {
		b.Helper()
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				b.Fatal(err)
			}
		}
	}
	writeCommitted := func(b *testing.B, w *store.SegmentedWriter) {
		b.Helper()
		for wk, week := range perWeek {
			for _, o := range week {
				if err := w.Write(o); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.CommitWeek(wk); err != nil {
				b.Fatal(err)
			}
		}
	}
	finish := func(b *testing.B, w store.Sink, path string) {
		b.Helper()
		if w.Count() != len(obs) {
			b.Fatalf("wrote %d observations, want %d", w.Count(), len(obs))
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if fi, err := os.Stat(path); err == nil {
			bytes = fi.Size()
		}
	}
	dir := b.TempDir()
	run := store.RunID{Seed: 1, Domains: len(perWeek[0]), Weeks: weeks}
	b.Run("plain-v1", func(b *testing.B) {
		path := filepath.Join(dir, "plain.jsonl.gz")
		for i := 0; i < b.N; i++ {
			w, err := store.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			writeAll(b, w)
			finish(b, w, path)
			b.SetBytes(bytes)
		}
		b.ReportMetric(float64(bytes), "archive-bytes")
	})
	for _, v := range []struct {
		name   string
		format int
	}{{"framed", store.FormatFramed}, {"delta", store.FormatDelta}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			path := filepath.Join(dir, v.name+".store")
			for i := 0; i < b.N; i++ {
				w, err := store.CreateSegmentedWith(path, 1, store.SegmentedOptions{Format: v.format})
				if err != nil {
					b.Fatal(err)
				}
				writeAll(b, w)
				finish(b, w, store.SegmentPath(path, 0))
				b.SetBytes(bytes)
			}
			b.ReportMetric(float64(bytes), "archive-bytes")
		})
		b.Run(v.name+"-commit", func(b *testing.B) {
			path := filepath.Join(dir, v.name+"-commit.store")
			for i := 0; i < b.N; i++ {
				w, err := store.CreateSegmentedWith(path, 1,
					store.SegmentedOptions{Checkpoint: true, Run: run, Format: v.format})
				if err != nil {
					b.Fatal(err)
				}
				writeCommitted(b, w)
				finish(b, w, store.SegmentPath(path, 0))
				b.SetBytes(bytes)
			}
			b.ReportMetric(float64(bytes), "archive-bytes")
		})
	}
}

// BenchmarkFingerprintMemo measures one simulated re-crawl week: every
// page fingerprinted, bodies unchanged from the warmup pass — the
// paper's dominant case. "uncached" runs the full tokenizer + ruleset
// per page; "memo" hits the per-shard content-hash cache.
func BenchmarkFingerprintMemo(b *testing.B) {
	eco := webgen.New(webgen.Config{Domains: 300, Seed: 3})
	type page struct{ html, host string }
	var pages []page
	var bytes int64
	for i := range eco.Sites {
		if html, status := eco.PageHTML(i, 100); status == 200 {
			pages = append(pages, page{html, eco.Sites[i].Domain.Name})
			bytes += int64(len(html))
		}
	}
	if len(pages) == 0 {
		b.Fatal("no accessible pages")
	}
	b.Run("uncached", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			for _, p := range pages {
				_ = fingerprint.Page(p.html, p.host)
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		memo := fingerprint.NewMemo(0)
		for _, p := range pages {
			_ = memo.Page(p.html, p.host) // warm: the previous week's crawl
		}
		b.SetBytes(bytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range pages {
				_ = memo.Page(p.html, p.host)
			}
		}
	})
}
