package clientres

// Ablations for the segmented store and the fingerprint memo cache — the
// two ends of the pipeline PR 1 left serial. BenchmarkStoreReadSegments
// compares a full archive replay through the single sequential gzip
// stream against the segmented parallel readers at 1/2/4/8 segments
// (run with -benchmem: the no-retain decode path of the parallel reader
// also cuts allocations/op). BenchmarkFingerprintMemo measures the
// re-crawl fingerprinting cost with and without the content-hash memo —
// the week-over-week unchanged-page case the paper's 531-day mean update
// delay makes dominant. BenchmarkStoreWrite measures the write-path
// durability tax: record framing (checksums) and per-week commit fsyncs
// versus the original unframed stream. `make bench-store` runs all three
// and appends machine-readable results to BENCH_store.json.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"clientres/internal/fingerprint"
	"clientres/internal/store"
	"clientres/internal/webgen"
)

// benchStores materializes the benchmark observation stream as a
// single-file archive plus segmented archives at several segment counts,
// once per process.
var (
	benchStoreOnce sync.Once
	benchStoreDir  string
	benchStoreErr  error
)

func benchStorePaths(b *testing.B) (single string, segmented func(int) string) {
	obs, _ := benchData(b)
	benchStoreOnce.Do(func() {
		// Not b.TempDir: the archives must survive this benchmark's
		// cleanup so -count=N reruns (and future benchmarks) can reuse
		// them; the OS reaps the temp dir.
		dir, err := os.MkdirTemp("", "clientres-bench-store-")
		if err != nil {
			benchStoreErr = err
			return
		}
		benchStoreDir = dir
		w, err := store.Create(filepath.Join(dir, "obs.jsonl.gz"))
		if err != nil {
			benchStoreErr = err
			return
		}
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				benchStoreErr = err
				return
			}
		}
		if benchStoreErr = w.Close(); benchStoreErr != nil {
			return
		}
		for _, segs := range []int{1, 2, 4, 8} {
			sw, err := store.CreateSegmented(filepath.Join(dir, fmt.Sprintf("obs-%d.store", segs)), segs)
			if err != nil {
				benchStoreErr = err
				return
			}
			for _, o := range obs {
				if err := sw.Write(o); err != nil {
					benchStoreErr = err
					return
				}
			}
			if benchStoreErr = sw.Close(); benchStoreErr != nil {
				return
			}
		}
	})
	if benchStoreErr != nil {
		b.Fatal(benchStoreErr)
	}
	return filepath.Join(benchStoreDir, "obs.jsonl.gz"),
		func(segs int) string {
			return filepath.Join(benchStoreDir, fmt.Sprintf("obs-%d.store", segs))
		}
}

// BenchmarkStoreReadSegments replays the full archive: the single-file
// sequential decoder versus the parallel per-segment decoders (the
// no-retain fast path core.RunFromStore uses when shards == segments).
func BenchmarkStoreReadSegments(b *testing.B) {
	single, segmented := benchStorePaths(b)
	count := func(b *testing.B, n int) {
		b.Helper()
		want := len(benchObs)
		if n != want {
			b.Fatalf("replay saw %d observations, want %d", n, want)
		}
	}
	b.Run("single-file", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := store.ForEach(single, func(store.Observation) error {
				n++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			count(b, n)
		}
	})
	for _, segs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			dir := segmented(segs)
			for i := 0; i < b.N; i++ {
				counts := make([]int, segs)
				if err := store.ForEachSegmentedParallel(dir, func(seg int, _ store.Observation) error {
					counts[seg]++
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				n := 0
				for _, c := range counts {
					n += c
				}
				count(b, n)
			}
		})
	}
}

// BenchmarkStoreWrite measures the durability tax on the write path:
// "plain-v1" is the original unframed single-file archive, "framed" the v2
// segmented layout with per-record length+checksum frames, and
// "framed-commit" the fully crash-safe configuration — one CommitWeek
// (segment flush + gzip member close + fsync + atomic checkpoint) per
// collected week. The framed and framed-commit costs over plain-v1 are the
// checksum and fsync overhead EXPERIMENTS.md tracks (budget: under ~10%).
func BenchmarkStoreWrite(b *testing.B) {
	obs, weeks := benchData(b)
	perWeek := make([][]store.Observation, weeks)
	for _, o := range obs {
		perWeek[o.Week] = append(perWeek[o.Week], o)
	}
	var bytes int64
	writeAll := func(b *testing.B, w store.Sink) {
		b.Helper()
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				b.Fatal(err)
			}
		}
	}
	finish := func(b *testing.B, w store.Sink, path string) {
		b.Helper()
		if w.Count() != len(obs) {
			b.Fatalf("wrote %d observations, want %d", w.Count(), len(obs))
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if fi, err := os.Stat(path); err == nil {
			bytes = fi.Size()
		}
	}
	dir := b.TempDir()
	b.Run("plain-v1", func(b *testing.B) {
		path := filepath.Join(dir, "plain.jsonl.gz")
		for i := 0; i < b.N; i++ {
			w, err := store.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			writeAll(b, w)
			finish(b, w, path)
			b.SetBytes(bytes)
		}
	})
	b.Run("framed", func(b *testing.B) {
		path := filepath.Join(dir, "framed.store")
		for i := 0; i < b.N; i++ {
			w, err := store.CreateSegmented(path, 1)
			if err != nil {
				b.Fatal(err)
			}
			writeAll(b, w)
			finish(b, w, store.SegmentPath(path, 0))
			b.SetBytes(bytes)
		}
	})
	b.Run("framed-commit", func(b *testing.B) {
		path := filepath.Join(dir, "commit.store")
		run := store.RunID{Seed: 1, Domains: len(perWeek[0]), Weeks: weeks}
		for i := 0; i < b.N; i++ {
			w, err := store.CreateSegmentedWith(path, 1,
				store.SegmentedOptions{Checkpoint: true, Run: run})
			if err != nil {
				b.Fatal(err)
			}
			for wk, week := range perWeek {
				for _, o := range week {
					if err := w.Write(o); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.CommitWeek(wk); err != nil {
					b.Fatal(err)
				}
			}
			finish(b, w, store.SegmentPath(path, 0))
			b.SetBytes(bytes)
		}
	})
}

// BenchmarkFingerprintMemo measures one simulated re-crawl week: every
// page fingerprinted, bodies unchanged from the warmup pass — the
// paper's dominant case. "uncached" runs the full tokenizer + ruleset
// per page; "memo" hits the per-shard content-hash cache.
func BenchmarkFingerprintMemo(b *testing.B) {
	eco := webgen.New(webgen.Config{Domains: 300, Seed: 3})
	type page struct{ html, host string }
	var pages []page
	var bytes int64
	for i := range eco.Sites {
		if html, status := eco.PageHTML(i, 100); status == 200 {
			pages = append(pages, page{html, eco.Sites[i].Domain.Name})
			bytes += int64(len(html))
		}
	}
	if len(pages) == 0 {
		b.Fatal("no accessible pages")
	}
	b.Run("uncached", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			for _, p := range pages {
				_ = fingerprint.Page(p.html, p.host)
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		memo := fingerprint.NewMemo(0)
		for _, p := range pages {
			_ = memo.Page(p.html, p.host) // warm: the previous week's crawl
		}
		b.SetBytes(bytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range pages {
				_ = memo.Page(p.html, p.host)
			}
		}
	})
}
