package clientres

// Crawl-path throughput ablation: BenchmarkCrawlWeek crawls one full
// synthetic week over loopback HTTP with the resilience layer off (plain)
// and on (polite), reporting pages/s and the crawler's own p50/p99 fetch
// latency. The polite variant prices the politeness/breaker bookkeeping on
// the hot path — on a fault-free ecosystem it must track the plain variant
// closely, since per-host pressure never builds when every host is hit
// once per week. `make bench-crawl` appends machine-readable results to
// BENCH_crawl.json.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"clientres/internal/crawler"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

func BenchmarkCrawlWeek(b *testing.B) {
	for _, mode := range []struct {
		name   string
		polite bool
	}{{"plain", false}, {"polite", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eco := webgen.New(webgen.Config{Domains: 300, Seed: 9})
			srv := httptest.NewServer(webserver.New(eco))
			defer srv.Close()
			cr := crawler.New(crawler.Config{
				BaseURL: srv.URL, Workers: 32,
				Resilience: crawler.Resilience{
					Enabled: mode.polite,
					// Successive iterations re-crawl the same week, so a
					// real gap would meter the benchmark, not the crawler.
					MinGap: time.Microsecond,
				},
			})
			domains := make([]string, len(eco.Sites))
			for i, s := range eco.Sites {
				domains[i] = s.Domain.Name
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cr.CrawlWeek(context.Background(), i%eco.Cfg.Weeks, domains, func(crawler.Page) {}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			pages := float64(b.N) * float64(len(domains))
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(pages/sec, "pages/s")
			}
			m := cr.Metrics()
			b.ReportMetric(float64(m.FetchP50.Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(m.FetchP99.Nanoseconds()), "p99-ns")
		})
	}
}
