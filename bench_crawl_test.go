package clientres

// Crawl-path throughput ablation: BenchmarkCrawlWeek crawls one full
// synthetic week over loopback HTTP with the resilience layer off (plain)
// and on (polite), reporting pages/s and the crawler's own p50/p99 fetch
// latency. The polite variant prices the politeness/breaker bookkeeping on
// the hot path — on a fault-free ecosystem it must track the plain variant
// closely, since per-host pressure never builds when every host is hit
// once per week. `make bench-crawl` appends machine-readable results to
// BENCH_crawl.json.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"clientres/internal/crawler"
	"clientres/internal/distcrawl"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

func BenchmarkCrawlWeek(b *testing.B) {
	for _, mode := range []struct {
		name   string
		polite bool
	}{{"plain", false}, {"polite", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eco := webgen.New(webgen.Config{Domains: 300, Seed: 9})
			srv := httptest.NewServer(webserver.New(eco))
			defer srv.Close()
			cr := crawler.New(crawler.Config{
				BaseURL: srv.URL, Workers: 32,
				Resilience: crawler.Resilience{
					Enabled: mode.polite,
					// Successive iterations re-crawl the same week, so a
					// real gap would meter the benchmark, not the crawler.
					MinGap: time.Microsecond,
				},
			})
			domains := make([]string, len(eco.Sites))
			for i, s := range eco.Sites {
				domains[i] = s.Domain.Name
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cr.CrawlWeek(context.Background(), i%eco.Cfg.Weeks, domains, func(crawler.Page) {}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			pages := float64(b.N) * float64(len(domains))
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(pages/sec, "pages/s")
			}
			m := cr.Metrics()
			b.ReportMetric(float64(m.FetchP50.Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(m.FetchP99.Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkDistCrawl prices the distributed plane end to end: one
// coordinator and 1/2/4 workers crawl the same small study to completion
// (lease round trips, per-week store commits, heartbeats — everything but
// the merge), reporting whole-run pages/s. The workers-1 variant is the
// coordination overhead floor against BenchmarkCrawlWeek; 2 and 4 show
// how much of the serial crawl the partition fan-out wins back.
func BenchmarkDistCrawl(b *testing.B) {
	const domains, weeks, partitions = 120, 4, 4
	for _, nw := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", nw), func(b *testing.B) {
			var agg crawler.MetricsSnapshot
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				spec := distcrawl.RunSpec{
					Domains: domains, Weeks: weeks, Seed: 9,
					Partitions: partitions,
					Dir:        b.TempDir(),
					LeaseTTL:   30 * time.Second,
				}
				coord, err := distcrawl.NewCoordinator(spec)
				if err != nil {
					b.Fatal(err)
				}
				srv := httptest.NewServer(coord.Handler())
				ctx, cancel := context.WithCancel(context.Background())
				b.StartTimer()

				errc := make(chan error, nw)
				for w := 0; w < nw; w++ {
					go func(w int) {
						errc <- (&distcrawl.Worker{
							ID:           fmt.Sprintf("bench-%d", w),
							Coord:        &distcrawl.Client{BaseURL: srv.URL},
							CrawlWorkers: 32 / nw,
						}).Run(ctx)
					}(w)
				}
				for w := 0; w < nw; w++ {
					if err := <-errc; err != nil && err != context.Canceled {
						b.Fatal(err)
					}
				}
				if !coord.Done() {
					b.Fatal("workers exited before the run completed")
				}

				b.StopTimer()
				agg.Merge(coord.Status().Metrics)
				cancel()
				srv.Close()
				b.StartTimer()
			}
			b.StopTimer()
			pages := float64(b.N) * domains * weeks
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(pages/sec, "pages/s")
			}
			b.ReportMetric(float64(agg.FetchP50.Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(agg.FetchP99.Nanoseconds()), "p99-ns")
		})
	}
}
