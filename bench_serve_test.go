package clientres

// Serve-path load test: BenchmarkServeAudit drives the online audit
// service closed-loop over loopback HTTP — cold (response cache disabled:
// every request fingerprints and matches) and warm (cache enabled, the
// page working set fits: steady state is all hits) — reporting req/s and
// the service's own p50/p99 audit latency scraped from /metrics. The
// benchmark is also a correctness gate: it asserts byte-identical cold vs
// cached responses and reconciles the server's request/cache/shed counters
// exactly against the requests the load generator sent. `make bench-serve`
// appends machine-readable results to BENCH_serve.json.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clientres/internal/service"
)

// benchPages builds the working set: distinct pages mixing vulnerable and
// clean library inclusions, small enough to stay cache-resident in warm
// mode.
func benchPages(n int) []string {
	pages := make([]string, n)
	for i := range pages {
		pages[i] = fmt.Sprintf(`<!DOCTYPE html><html><head>
<script src="https://code.jquery.com/jquery-1.%d.4.min.js"></script>
<script src="https://maxcdn.bootstrapcdn.com/bootstrap/3.3.%d/js/bootstrap.min.js"></script>
<script src="/assets/v%d/moment-2.10.6.min.js"></script>
<link rel="stylesheet" href="/site.css">
</head><body><p>site %d</p></body></html>`, 4+i%9, i%8, i, i)
	}
	return pages
}

// scrapeMetrics parses the Prometheus text exposition into series → value.
func scrapeMetrics(tb testing.TB, client *http.Client, base string) map[string]float64 {
	tb.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

func BenchmarkServeAudit(b *testing.B) {
	for _, mode := range []struct {
		name  string
		cache int
	}{{"cold", -1}, {"warm", 4096}} {
		b.Run(mode.name, func(b *testing.B) {
			svc := service.New(service.Config{
				Workers: 4, QueueDepth: 256, CacheEntries: mode.cache,
				Now: func() time.Time { return time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC) },
			})
			defer svc.Close()
			ts := httptest.NewServer(svc)
			defer ts.Close()
			client := &http.Client{Transport: &http.Transport{
				MaxIdleConns: 64, MaxIdleConnsPerHost: 64,
			}}
			pages := benchPages(32)

			post := func(page string) (int, []byte) {
				resp, err := client.Post(ts.URL+"/v1/audit?host=bench.test", "text/html", strings.NewReader(page))
				if err != nil {
					b.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					b.Fatal(err)
				}
				_ = resp.Body.Close()
				return resp.StatusCode, body
			}

			// Correctness gate: the same input audited cold and answered
			// from cache must be byte-identical.
			var setup int
			code, cold := post(pages[0])
			setup++
			if code != http.StatusOK {
				b.Fatalf("setup audit status %d", code)
			}
			if mode.cache > 0 {
				code, cached := post(pages[0])
				setup++
				if code != http.StatusOK || !bytes.Equal(cold, cached) {
					b.Fatal("cached response not byte-identical to cold response")
				}
			}

			var sent atomic.Int64
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					code, _ := post(pages[i%len(pages)])
					if code != http.StatusOK {
						b.Errorf("audit status %d", code)
						return
					}
					i++
					sent.Add(1)
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "req/s")
			}

			// Reconcile the server's counters against what we sent: every
			// request accounted for, nothing shed, nothing dropped.
			m := scrapeMetrics(b, client, ts.URL)
			total := int64(m[`clientres_http_requests_total{endpoint="audit"}`])
			hits := int64(m[`clientres_audit_cache_hits_total`])
			misses := int64(m[`clientres_audit_cache_misses_total`])
			shedQ := int64(m[`clientres_audit_shed_total{reason="queue_full"}`])
			shedR := int64(m[`clientres_audit_shed_total{reason="rate_limited"}`])
			want := sent.Load() + int64(setup)
			if total != want {
				b.Fatalf("server saw %d audit requests, load generator sent %d", total, want)
			}
			if hits+misses != total {
				b.Fatalf("cache hits(%d)+misses(%d) != requests(%d)", hits, misses, total)
			}
			if shedQ != 0 || shedR != 0 {
				b.Fatalf("shed requests: queue=%d rate=%d, want 0", shedQ, shedR)
			}
			if mode.cache > 0 {
				// Warm steady state: only the first sight of each page misses.
				if maxMisses := int64(len(pages) + 1); misses > maxMisses {
					b.Fatalf("warm misses = %d, want ≤ %d", misses, maxMisses)
				}
			}
			b.ReportMetric(m[`clientres_http_request_duration_seconds{endpoint="audit",quantile="0.5"}`]*1e9, "p50-ns")
			b.ReportMetric(m[`clientres_http_request_duration_seconds{endpoint="audit",quantile="0.99"}`]*1e9, "p99-ns")
		})
	}
}
