package clientres

// Serve-path load test: BenchmarkServeAudit drives the online audit
// service closed-loop over loopback HTTP — cold (response cache disabled:
// every request fingerprints and matches) and warm (cache enabled, the
// page working set fits: steady state is all hits) — reporting req/s and
// the service's own p50/p99 audit latency scraped from /metrics. The
// benchmark is also a correctness gate: it asserts byte-identical cold vs
// cached responses and reconciles the server's request/cache/shed counters
// exactly against the requests the load generator sent. `make bench-serve`
// appends machine-readable results to BENCH_serve.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clientres/internal/service"
)

// benchPages builds the working set: distinct pages mixing vulnerable and
// clean library inclusions, small enough to stay cache-resident in warm
// mode.
func benchPages(n int) []string {
	pages := make([]string, n)
	for i := range pages {
		pages[i] = fmt.Sprintf(`<!DOCTYPE html><html><head>
<script src="https://code.jquery.com/jquery-1.%d.4.min.js"></script>
<script src="https://maxcdn.bootstrapcdn.com/bootstrap/3.3.%d/js/bootstrap.min.js"></script>
<script src="/assets/v%d/moment-2.10.6.min.js"></script>
<link rel="stylesheet" href="/site.css">
</head><body><p>site %d</p></body></html>`, 4+i%9, i%8, i, i)
	}
	return pages
}

// scrapeMetrics parses the Prometheus text exposition into series → value.
func scrapeMetrics(tb testing.TB, client *http.Client, base string) map[string]float64 {
	tb.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

func BenchmarkServeAudit(b *testing.B) {
	for _, mode := range []struct {
		name  string
		cache int
	}{{"cold", -1}, {"warm", 4096}} {
		b.Run(mode.name, func(b *testing.B) {
			svc := service.New(service.Config{
				Workers: 4, QueueDepth: 256, CacheEntries: mode.cache,
				Now: func() time.Time { return time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC) },
			})
			defer svc.Close()
			ts := httptest.NewServer(svc)
			defer ts.Close()
			client := &http.Client{Transport: &http.Transport{
				MaxIdleConns: 64, MaxIdleConnsPerHost: 64,
			}}
			pages := benchPages(32)

			post := func(page string) (int, []byte) {
				resp, err := client.Post(ts.URL+"/v1/audit?host=bench.test", "text/html", strings.NewReader(page))
				if err != nil {
					b.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					b.Fatal(err)
				}
				_ = resp.Body.Close()
				return resp.StatusCode, body
			}

			// Correctness gate: the same input audited cold and answered
			// from cache must be byte-identical.
			var setup int
			code, cold := post(pages[0])
			setup++
			if code != http.StatusOK {
				b.Fatalf("setup audit status %d", code)
			}
			if mode.cache > 0 {
				code, cached := post(pages[0])
				setup++
				if code != http.StatusOK || !bytes.Equal(cold, cached) {
					b.Fatal("cached response not byte-identical to cold response")
				}
			}

			var sent atomic.Int64
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					code, _ := post(pages[i%len(pages)])
					if code != http.StatusOK {
						b.Errorf("audit status %d", code)
						return
					}
					i++
					sent.Add(1)
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "req/s")
			}

			// Reconcile the server's counters against what we sent: every
			// request accounted for, nothing shed, nothing dropped.
			m := scrapeMetrics(b, client, ts.URL)
			total := int64(m[`clientres_http_requests_total{endpoint="audit"}`])
			hits := int64(m[`clientres_audit_cache_hits_total`])
			misses := int64(m[`clientres_audit_cache_misses_total`])
			shedQ := int64(m[`clientres_audit_shed_total{reason="queue_full"}`])
			shedR := int64(m[`clientres_audit_shed_total{reason="rate_limited"}`])
			want := sent.Load() + int64(setup)
			if total != want {
				b.Fatalf("server saw %d audit requests, load generator sent %d", total, want)
			}
			if shedQ != 0 || shedR != 0 {
				b.Fatalf("shed requests: queue=%d rate=%d, want 0", shedQ, shedR)
			}
			if mode.cache > 0 {
				if hits+misses != total {
					b.Fatalf("cache hits(%d)+misses(%d) != requests(%d)", hits, misses, total)
				}
				// Warm steady state: only the first sight of each page misses.
				if maxMisses := int64(len(pages) + 1); misses > maxMisses {
					b.Fatalf("warm misses = %d, want ≤ %d", misses, maxMisses)
				}
			} else if hits != 0 || misses != 0 {
				// With the cache disabled there is no cache to hit or miss;
				// a nonzero counter here is the phantom-miss regression.
				b.Fatalf("cache counters hits=%d misses=%d with cache disabled, want 0/0", hits, misses)
			}
			b.ReportMetric(m[`clientres_http_request_duration_seconds{endpoint="audit",quantile="0.5"}`]*1e9, "p50-ns")
			b.ReportMetric(m[`clientres_http_request_duration_seconds{endpoint="audit",quantile="0.99"}`]*1e9, "p99-ns")
		})
	}
}

// BenchmarkServeBatch drives POST /v1/audit/batch: each operation streams
// one NDJSON batch of recordsPerBatch records (with a policy control line)
// and reads the NDJSON reply. req/s counts records, making the number
// comparable with BenchmarkServeAudit's one-record-per-request rate. The
// reconciliation gate is exact: every submitted record must come back as
// completed, errored, or shed — in both the per-stream summaries and the
// server's /metrics counters.
func BenchmarkServeBatch(b *testing.B) {
	const recordsPerBatch = 16
	const benchPolicy = `name: bench gate
rules:
  - name: stale-high
    scope: finding
    when: severity == "high" && age(disclosed) > 90d
  - name: missing-sri
    when: missing_sri > 0
`
	svc := service.New(service.Config{
		Workers: 4, QueueDepth: 256, CacheEntries: 4096,
		Now: func() time.Time { return time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC) },
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 64, MaxIdleConnsPerHost: 64,
	}}
	pages := benchPages(32)

	polJSON, err := json.Marshal(benchPolicy)
	if err != nil {
		b.Fatal(err)
	}
	makeBody := func(start int) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, `{"policy":%s}`+"\n", polJSON)
		for i := 0; i < recordsPerBatch; i++ {
			pg, _ := json.Marshal(pages[(start+i)%len(pages)])
			fmt.Fprintf(&sb, `{"html":%s,"host":"bench.test"}`+"\n", pg)
		}
		return sb.String()
	}

	var records, completed, errored, shed atomic.Int64
	b.ResetTimer()
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/v1/audit/batch", "application/x-ndjson",
				strings.NewReader(makeBody(i)))
			if err != nil {
				b.Error(err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Errorf("batch status %d err %v", resp.StatusCode, err)
				return
			}
			// The summary is the last NDJSON line; trust it only after
			// checking the per-record line count matches what we sent.
			lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
			if len(lines) != recordsPerBatch+1 {
				b.Errorf("batch reply has %d lines, want %d records + summary", len(lines), recordsPerBatch+1)
				return
			}
			var sum struct {
				Summary struct {
					Records, Completed, Errors, Shed int
				} `json:"summary"`
			}
			if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil {
				b.Errorf("bad summary line %q", lines[len(lines)-1])
				return
			}
			s := sum.Summary
			if s.Records != recordsPerBatch || s.Completed+s.Errors != s.Records {
				b.Errorf("summary does not reconcile: %+v", s)
				return
			}
			records.Add(int64(s.Records))
			completed.Add(int64(s.Completed))
			errored.Add(int64(s.Errors))
			shed.Add(int64(s.Shed))
			i += recordsPerBatch
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(records.Load())/sec, "req/s")
	}

	// Exact reconciliation: client-side per-stream summaries and the
	// server's own counters must both account for every record.
	m := scrapeMetrics(b, client, ts.URL)
	srvRecords := int64(m[`clientres_batch_records_total{result="completed"}`] +
		m[`clientres_batch_records_total{result="error"}`])
	if got := int64(m[`clientres_batch_records_total{result="completed"}`]); got != completed.Load() {
		b.Fatalf("server completed %d records, client saw %d", got, completed.Load())
	}
	if got := int64(m[`clientres_batch_records_total{result="error"}`]); got != errored.Load() {
		b.Fatalf("server errored %d records, client saw %d", got, errored.Load())
	}
	if got := int64(m[`clientres_batch_records_total{result="shed"}`]); got != shed.Load() {
		b.Fatalf("server shed %d records, client saw %d", got, shed.Load())
	}
	if srvRecords != records.Load() {
		b.Fatalf("server accounted %d records, load generator sent %d", srvRecords, records.Load())
	}
	if streams := int64(m[`clientres_batch_streams_total`]); streams != int64(b.N) {
		b.Fatalf("server saw %d streams, client opened %d", streams, b.N)
	}
	if active := int64(m[`clientres_batch_streams_active`]); active != 0 {
		b.Fatalf("batch active gauge = %d after load, want 0", active)
	}
	b.ReportMetric(m[`clientres_http_request_duration_seconds{endpoint="audit_batch",quantile="0.99"}`]*1e9, "p99-ns")
}
