// Command analyze replays a stored observation dataset through every
// analysis of the paper and prints the full table/figure report. The
// input may be a single gzip JSONL file or a segmented store directory
// (see cmd/gendata -segments); both are read transparently, and when the
// segment count equals -shards the replay decodes every segment
// concurrently straight into its shard's collectors.
//
// Usage:
//
//	analyze -in observations.jsonl.gz -weeks 201 -domains 20000 -shards 8
//	analyze -in observations.store -shards 8 -cpuprofile analyze.pprof
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"clientres/internal/core"
	"clientres/internal/prof"
	"clientres/internal/store"
	"clientres/internal/webgen"
)

func main() {
	in := flag.String("in", "observations.jsonl.gz", "input observation file or segmented store directory")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "snapshot weeks in the dataset")
	domains := flag.Int("domains", 20000, "ranked population size of the dataset")
	shards := flag.Int("shards", 1, "parallel analysis shards (results identical to -shards 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	bundleScan := flag.Bool("bundle-scan", false, "append a bundle-detection summary: how many library detections came from content signatures vs URLs")
	flag.Parse()

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	res, err := core.RunFromStore(*in, *weeks, *domains, *shards)
	stopCPU()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		log.Fatalf("analyze: %v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	res.WriteReport(w)
	if *bundleScan {
		if err := writeBundleSummary(w, *in); err != nil {
			log.Fatalf("analyze: %v", err)
		}
	}
}

// writeBundleSummary streams the store a second time and reports how many
// library detections were recovered from script content (bundles) rather
// than from <script src> URLs — the measured reach of -bundle-scan.
func writeBundleSummary(w *bufio.Writer, path string) error {
	var pages, sigPages, libs, sigLibs int
	count := func(obs store.Observation) error {
		if !obs.OK() {
			return nil
		}
		pages++
		viaSig := false
		for _, l := range obs.Libs {
			libs++
			if l.Sig {
				sigLibs++
				viaSig = true
			}
		}
		if viaSig {
			sigPages++
		}
		return nil
	}
	var err error
	if store.IsSegmented(path) {
		err = store.ForEachSegmented(path, count)
	} else {
		err = store.ForEach(path, count)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nBundle-scan summary\n")
	fmt.Fprintf(w, "  pages with >=1 signature-recovered library: %d / %d usable pages\n", sigPages, pages)
	fmt.Fprintf(w, "  signature-recovered library detections:     %d / %d detections\n", sigLibs, libs)
	return nil
}
