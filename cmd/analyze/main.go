// Command analyze replays a stored observation dataset through every
// analysis of the paper and prints the full table/figure report.
//
// Usage:
//
//	analyze -in observations.jsonl.gz -weeks 201 -domains 20000 -shards 8
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"clientres/internal/core"
	"clientres/internal/webgen"
)

func main() {
	in := flag.String("in", "observations.jsonl.gz", "input observation file")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "snapshot weeks in the dataset")
	domains := flag.Int("domains", 20000, "ranked population size of the dataset")
	shards := flag.Int("shards", 1, "parallel analysis shards (results identical to -shards 1)")
	flag.Parse()

	res, err := core.RunFromStore(*in, *weeks, *domains, *shards)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	res.WriteReport(w)
}
