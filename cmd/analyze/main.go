// Command analyze replays a stored observation dataset through every
// analysis of the paper and prints the full table/figure report. The
// input may be a single gzip JSONL file or a segmented store directory
// (see cmd/gendata -segments); both are read transparently, and when the
// segment count equals -shards the replay decodes every segment
// concurrently straight into its shard's collectors.
//
// With -batch it instead runs the offline NDJSON audit path: the same
// record loop as the service's POST /v1/audit/batch (optionally gated by
// -policy), emitting byte-identical lines — no server required. The exit
// code is 1 when any record fails policy or errors, so the mode slots
// into CI.
//
// Usage:
//
//	analyze -in observations.jsonl.gz -weeks 201 -domains 20000 -shards 8
//	analyze -in observations.store -shards 8 -cpuprofile analyze.pprof
//	analyze -batch pages.ndjson -policy gate.yaml -now 2026-01-02T12:00:00Z
//	analyze -bundle crawl.bundle -shards 8   # replay a recorded bundle, zero network
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"clientres/internal/core"
	"clientres/internal/policy"
	"clientres/internal/prof"
	"clientres/internal/service"
	"clientres/internal/store"
	"clientres/internal/webgen"
	"clientres/internal/wexbundle"
)

func main() {
	in := flag.String("in", "observations.jsonl.gz", "input observation file or segmented store directory")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "snapshot weeks in the dataset")
	domains := flag.Int("domains", 20000, "ranked population size of the dataset")
	shards := flag.Int("shards", 1, "parallel analysis shards (results identical to -shards 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	bundleScan := flag.Bool("bundle-scan", false, "append a bundle-detection summary: how many library detections came from content signatures vs URLs (with -bundle: fetch and scan same-site scripts during the replay)")
	bundle := flag.String("bundle", "", "replay-audit mode: re-crawl this recorded web-execution bundle with zero network instead of reading a store (-domains/-weeks/-seed/-bundle-scan default from the bundle's metadata)")
	seed := flag.Int64("seed", 1, "generation seed of the recorded run (with -bundle)")
	batch := flag.String("batch", "", "offline batch-audit mode: NDJSON records file (- for stdin), same protocol as POST /v1/audit/batch")
	policyFile := flag.String("policy", "", "policy file (YAML or JSON) evaluated against each -batch record")
	nowFlag := flag.String("now", "", "audit clock as RFC3339 for -batch (default wall clock)")
	flag.Parse()

	if *batch != "" {
		os.Exit(runBatch(*batch, *policyFile, *nowFlag))
	}
	if *policyFile != "" {
		log.Fatal("analyze: -policy requires -batch")
	}

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	var res *core.Results
	if *bundle != "" {
		res, err = runBundle(*bundle, *weeks, *domains, *seed, *shards, *bundleScan)
	} else {
		res, err = core.RunFromStore(*in, *weeks, *domains, *shards)
	}
	stopCPU()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		log.Fatalf("analyze: %v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	res.WriteReport(w)
	if *bundleScan && *bundle == "" {
		if err := writeBundleSummary(w, *in); err != nil {
			log.Fatalf("analyze: %v", err)
		}
	}
}

// runBundle re-crawls a recorded bundle through the full pipeline with a
// replay transport — zero network, byte-identical report to the live run
// that recorded it. The recorded run's -domains/-weeks/-seed/-bundle-scan
// come from bundle.json unless set explicitly on the command line.
func runBundle(dir string, weeks, domains int, seed int64, shards int, bundleScan bool) (*core.Results, error) {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if meta, err := wexbundle.ReadMeta(dir); err == nil {
		if !set["domains"] && meta.Domains > 0 {
			domains = meta.Domains
		}
		if !set["weeks"] && meta.Weeks > 0 {
			weeks = meta.Weeks
		}
		if !set["seed"] && meta.Seed != 0 {
			seed = meta.Seed
		}
		if !set["bundle-scan"] {
			bundleScan = meta.BundleScan
		}
	}
	return core.Run(context.Background(), core.Config{
		Domains: domains, Weeks: weeks, Seed: seed,
		Mode: core.ModeCrawl, Shards: shards,
		BundleScan:   bundleScan,
		ReplayBundle: dir,
	})
}

// runBatch is the offline audit gate: service.RunBatch over a records
// file, NDJSON out on stdout, summary on stderr. Exit 1 when any record
// errors or the worst policy verdict is "fail" — the auditsite/CI
// contract.
func runBatch(batchPath, policyFile, nowFlag string) int {
	var pol *policy.Policy
	if policyFile != "" {
		src, err := os.ReadFile(policyFile)
		if err != nil {
			log.Printf("analyze: %v", err)
			return 2
		}
		if pol, err = policy.Compile(src); err != nil {
			log.Printf("analyze: policy %s: %v", policyFile, err)
			return 2
		}
	}
	now := time.Now()
	if nowFlag != "" {
		t, err := time.Parse(time.RFC3339, nowFlag)
		if err != nil {
			log.Printf("analyze: bad -now: %v", err)
			return 2
		}
		now = t
	}
	var r io.Reader = os.Stdin
	if batchPath != "-" {
		f, err := os.Open(batchPath)
		if err != nil {
			log.Printf("analyze: %v", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	w := bufio.NewWriter(os.Stdout)
	sum, err := service.RunBatch(r, w, pol, now, 0)
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Printf("analyze: batch: %v", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "batch: %d records, %d completed, %d errors, overall %q\n",
		sum.Records, sum.Completed, sum.Errors, sum.Overall)
	if sum.Errors > 0 || sum.Overall == "fail" {
		return 1
	}
	return 0
}

// writeBundleSummary streams the store a second time and reports how many
// library detections were recovered from script content (bundles) rather
// than from <script src> URLs — the measured reach of -bundle-scan.
func writeBundleSummary(w *bufio.Writer, path string) error {
	var pages, sigPages, libs, sigLibs int
	count := func(obs store.Observation) error {
		if !obs.OK() {
			return nil
		}
		pages++
		viaSig := false
		for _, l := range obs.Libs {
			libs++
			if l.Sig {
				sigLibs++
				viaSig = true
			}
		}
		if viaSig {
			sigPages++
		}
		return nil
	}
	var err error
	if store.IsSegmented(path) {
		err = store.ForEachSegmented(path, count)
	} else {
		err = store.ForEach(path, count)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nBundle-scan summary\n")
	fmt.Fprintf(w, "  pages with >=1 signature-recovered library: %d / %d usable pages\n", sigPages, pages)
	fmt.Fprintf(w, "  signature-recovered library detections:     %d / %d detections\n", sigLibs, libs)
	return nil
}
