// Command vvexp runs the Version Validation Experiment of Section 6.4: it
// sets up an emulated environment per catalogued library version, runs each
// advisory's proof of concept in every environment, and reports the
// computed True Vulnerable Versions against the CVE-disclosed ranges
// (Table 2's accuracy marks, Figure 4, Figure 13).
//
// Usage:
//
//	vvexp            # all advisories
//	vvexp CVE-2020-7656
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"clientres/internal/poclab"
	"clientres/internal/report"
)

func main() {
	flag.Parse()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var findings []poclab.Finding
	if id := flag.Arg(0); id != "" {
		f, err := poclab.Run(id)
		if err != nil {
			log.Fatalf("vvexp: %v", err)
		}
		findings = []poclab.Finding{f}
	} else {
		var err error
		findings, err = poclab.RunAll()
		if err != nil {
			log.Fatalf("vvexp: %v", err)
		}
	}

	report.Table2(w, findings, nil)
	report.Figure4(w, findings, "jquery", "Figure 4: jQuery disclosed vs true vulnerable versions")
	report.Figure13(w, findings)

	incorrect := 0
	for _, f := range findings {
		if f.Accuracy.String() != "accurate" && f.Accuracy.String() != "unvalidated" {
			incorrect++
		}
	}
	fmt.Fprintf(w, "\n%d of %d advisories state incorrect versions (paper: 13 of 27)\n",
		incorrect, len(findings))
}
