// Command reprotables regenerates every table and figure of the paper's
// evaluation in one run: it builds the calibrated synthetic web, collects
// all weekly snapshots, runs every analysis and the PoC validation
// experiment, and prints the complete report (the source of EXPERIMENTS.md).
//
// Usage:
//
//	reprotables -domains 20000              # direct collection (fast)
//	reprotables -domains 1500 -crawl        # full HTTP crawl pipeline
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"clientres/internal/core"
	"clientres/internal/webgen"
)

func main() {
	domains := flag.Int("domains", 20000, "number of ranked domains to model")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "number of weekly snapshots")
	seed := flag.Int64("seed", 1, "generation seed")
	crawl := flag.Bool("crawl", false, "collect via the HTTP crawler instead of ground truth")
	workers := flag.Int("workers", 64, "crawler workers (with -crawl)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	csvDir := flag.String("csvdir", "", "also export full-resolution figure series as CSV into this directory")
	flag.Parse()

	cfg := core.Config{Domains: *domains, Weeks: *weeks, Seed: *seed, Workers: *workers}
	if *crawl {
		cfg.Mode = core.ModeCrawl
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\r", args...)
		}
	}
	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatalf("reprotables: %v", err)
	}
	fmt.Fprintln(os.Stderr)
	if *csvDir != "" {
		if err := res.WriteCSVDir(*csvDir); err != nil {
			log.Fatalf("reprotables: %v", err)
		}
		fmt.Fprintf(os.Stderr, "figure series exported to %s\n", *csvDir)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	res.WriteReport(w)
}
