// Command serve runs the online vulnerability-audit service: the study's
// fingerprint → CVE/TVV-match pipeline behind a production HTTP API.
//
//	serve -addr :8080 -workers 8 -queue 128 -cache 8192 -rate 50 -burst 100
//
// Endpoints: POST /v1/audit (raw HTML, or JSON {"url": ...} fetched through
// the resilient crawler path), GET /v1/libraries, GET /v1/vulns/{lib},
// GET /healthz, GET /metrics (Prometheus text format). SIGINT/SIGTERM
// triggers a graceful shutdown that refuses new connections and drains
// every in-flight audit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clientres/internal/crawler"
	"clientres/internal/policy"
	"clientres/internal/service"
	"clientres/internal/wexbundle"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 8, "audit worker pool size")
	queue := flag.Int("queue", 128, "audit queue depth; a full queue sheds with 503 + Retry-After")
	cache := flag.Int("cache", 8192, "response-cache entries (negative disables)")
	rate := flag.Float64("rate", 50, "per-client rate limit in audits/s (0 disables)")
	burst := flag.Int("burst", 100, "per-client burst capacity (0 = 2x rate)")
	maxBody := flag.Int64("max-body", 2<<20, "maximum audit request body bytes")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	fetchURLs := flag.Bool("fetch", true, "enable {\"url\": ...} audits via the resilient crawler fetch path")
	fetchTimeout := flag.Duration("fetch-timeout", 10*time.Second, "per-fetch timeout for url audits")
	policyFile := flag.String("policy", "", "server policy file (YAML or JSON); clients select it with \"policy\":\"server\" or ?policy=server")
	nowFlag := flag.String("now", "", "pin the audit clock to an RFC3339 instant (deterministic verdicts; default wall clock)")
	bundle := flag.String("bundle", "", "serve {\"url\": ...} audits from this recorded web-execution bundle instead of the live network (zero network; unrecorded URLs error)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	cfg := service.Config{
		Workers: *workers, QueueDepth: *queue, CacheEntries: *cache,
		RatePerSec: *rate, Burst: *burst,
		MaxBodyBytes: *maxBody, DrainTimeout: *drain,
		Logger: log,
	}
	if *policyFile != "" {
		src, err := os.ReadFile(*policyFile)
		if err != nil {
			log.Error("policy", "err", err)
			os.Exit(1)
		}
		pol, err := policy.Compile(src)
		if err != nil {
			log.Error("policy", "file", *policyFile, "err", err)
			os.Exit(1)
		}
		cfg.Policy = pol
		log.Info("policy loaded", "file", *policyFile, "name", pol.Name, "rules", len(pol.Rules))
	}
	if *nowFlag != "" {
		t, err := time.Parse(time.RFC3339, *nowFlag)
		if err != nil {
			log.Error("bad -now", "err", err)
			os.Exit(1)
		}
		cfg.Now = func() time.Time { return t }
	}
	if *fetchURLs {
		ccfg := crawler.Config{
			Timeout:   *fetchTimeout,
			UserAgent: "clientres-audit-service/1.0",
			Resilience: crawler.Resilience{
				Enabled:     true,
				RetryBudget: -1, // online fetches have no weekly budget
			},
		}
		if *bundle != "" {
			b, err := wexbundle.Mount(*bundle)
			if err != nil {
				log.Error("bundle", "err", err)
				os.Exit(1)
			}
			ccfg.WrapTransport = func(http.RoundTripper) http.RoundTripper { return b.Transport() }
			log.Info("bundle mounted", "dir", *bundle, "records", b.Len())
		}
		cr := crawler.New(ccfg)
		cfg.Fetch = func(ctx context.Context, url string) (int, string, error) {
			p := cr.FetchURL(ctx, url)
			return p.Status, p.Body, p.Err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := service.New(cfg)
	addrReady := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(ctx, *addr, addrReady) }()

	select {
	case bound := <-addrReady:
		// The smoke script parses this line to find an ephemeral port.
		fmt.Printf("serving on http://%s\n", bound)
	case err := <-errc:
		log.Error("serve", "err", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil {
		log.Error("serve", "err", err)
		os.Exit(1)
	}
	log.Info("drained and stopped")
}
