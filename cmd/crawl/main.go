// Command crawl runs the study's real collection pipeline: it serves the
// synthetic web on a loopback HTTP listener, crawls every domain every
// snapshot week with the concurrent crawler, fingerprints each landing
// page (with a per-shard content-hash memo cache, since most pages are
// week-over-week identical), and stores the resulting observations.
//
// Usage:
//
//	crawl -domains 2000 -weeks 50 -workers 64 -shards 4 -out crawl.jsonl.gz
//	crawl -shards 4 -segments 4 -out crawl.store -cpuprofile crawl.pprof
//	crawl -politeness -chaos 0.2 -weeks 8 -out drill.jsonl.gz   # fault drill
//	crawl -checkpoint -out crawl.store       # journal every completed week
//	crawl -resume -out crawl.store           # continue a crashed run
//	crawl -record crawl.bundle -out crawl.store   # archive every response
//	crawl -replay crawl.bundle -out replay.store  # re-crawl with zero network
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"clientres/internal/core"
	"clientres/internal/crawler"
	"clientres/internal/prof"
	"clientres/internal/webgen"
)

func main() {
	domains := flag.Int("domains", 2000, "number of ranked domains to model")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "number of weekly snapshots")
	seed := flag.Int64("seed", 1, "generation seed")
	workers := flag.Int("workers", 64, "concurrent crawler workers")
	fetchTimeout := flag.Duration("fetch-timeout", 0, "per-page fetch deadline covering all retries and script fetches (0 disables; an expired fetch records the usual status-0 observation)")
	shards := flag.Int("shards", 1, "parallel fingerprint/analysis shards (results identical to -shards 1)")
	segments := flag.Int("segments", 1, "store segments; >1 writes a segmented store directory (reads identical to a single file)")
	fpcache := flag.Int("fpcache", 0, "per-shard fingerprint memo entries (0 = default, negative = disable)")
	out := flag.String("out", "crawl.jsonl.gz", "output path (gzip JSONL file, or a directory with -segments > 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	politeness := flag.Bool("politeness", false, "enable the per-host resilience layer: politeness limiter, circuit breaker, weekly retry budget (reports are identical either way)")
	hostGap := flag.Duration("hostgap", 15*time.Millisecond, "minimum per-host inter-request gap (with -politeness)")
	hostParallel := flag.Int("host-parallel", 2, "max in-flight requests per host (with -politeness)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive connection failures that open a host's circuit (with -politeness)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "open-circuit shed time before a half-open probe (with -politeness)")
	retryBudget := flag.Int("retry-budget", 0, "per-week shared retry budget (0 = one per domain, negative = unlimited; with -politeness)")
	chaos := flag.Float64("chaos", 0, "fault-injection rate per (domain, week) on the loopback server: stalls, resets, truncated bodies, slow-loris (0 disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault schedule seed (with -chaos)")
	checkpoint := flag.Bool("checkpoint", false, "commit a crash-safety journal after every completed week (forces the segmented store layout; reports are identical either way)")
	resume := flag.Bool("resume", false, "resume a crashed -checkpoint run from its journal: verify and replay the committed weeks, then continue at the first incomplete week (implies -checkpoint)")
	bundleFrac := flag.Float64("bundle-frac", 0, "fraction of eligible generated sites that ship their libraries as one bundled script (0 disables; bundles hide library URLs from the fingerprinter)")
	bundleScan := flag.Bool("bundle-scan", false, "fetch each page's same-site scripts and scan their content for library signatures (recovers bundled libraries; plain pages detect identically either way)")
	record := flag.String("record", "", "record every fetched response into a web-execution bundle at this directory (honors -checkpoint/-resume; reports are identical either way)")
	replay := flag.String("replay", "", "replay the crawl from a recorded bundle directory with zero network (no loopback server is started)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		log.Fatalf("crawl: %v", err)
	}

	cfg := core.Config{
		Domains: *domains, Weeks: *weeks, Seed: *seed,
		Bundling:   webgen.DefaultBundling(*bundleFrac),
		BundleScan: *bundleScan,
		Mode:       core.ModeCrawl, Workers: *workers, Shards: *shards,
		FetchTimeout: *fetchTimeout,
		StorePath: *out, StoreSegments: *segments,
		FingerprintCacheSize: *fpcache,
		Resilience: crawler.Resilience{
			Enabled:          *politeness,
			MaxPerHost:       *hostParallel,
			MinGap:           *hostGap,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			RetryBudget:      *retryBudget,
		},
		ChaosRate:  *chaos,
		ChaosSeed:  *chaosSeed,
		Checkpoint:   *checkpoint,
		Resume:       *resume,
		RecordBundle: *record,
		ReplayBundle: *replay,
		SkipPoC:      true,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	res, err := core.Run(ctx, cfg)
	stopCPU()
	if err != nil {
		log.Fatalf("crawl: %v", err)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		log.Fatalf("crawl: %v", err)
	}
	if m := res.Crawl; m != nil {
		fmt.Fprintf(os.Stderr,
			"crawl metrics: attempts=%d retries=%d successes=%d conn_failures=%d breaker_trips=%d breaker_shed=%d budget_exhausted=%d bytes=%d fetch_p50=%s fetch_p99=%s\n",
			m.Attempts, m.Retries, m.Successes, m.ConnFailures,
			m.BreakerTrips, m.BreakerShed, m.BudgetExhausted, m.Bytes,
			m.FetchP50, m.FetchP99)
	}
	fmt.Printf("crawled %d domains x %d weeks into %s\n", *domains, *weeks, *out)
}
