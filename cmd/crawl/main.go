// Command crawl runs the study's real collection pipeline: it serves the
// synthetic web on a loopback HTTP listener, crawls every domain every
// snapshot week with the concurrent crawler, fingerprints each landing
// page, and stores the resulting observations.
//
// Usage:
//
//	crawl -domains 2000 -weeks 50 -workers 64 -shards 4 -out crawl.jsonl.gz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"clientres/internal/core"
	"clientres/internal/webgen"
)

func main() {
	domains := flag.Int("domains", 2000, "number of ranked domains to model")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "number of weekly snapshots")
	seed := flag.Int64("seed", 1, "generation seed")
	workers := flag.Int("workers", 64, "concurrent crawler workers")
	shards := flag.Int("shards", 1, "parallel fingerprint/analysis shards (results identical to -shards 1)")
	out := flag.String("out", "crawl.jsonl.gz", "output path (gzip JSONL)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := core.Config{
		Domains: *domains, Weeks: *weeks, Seed: *seed,
		Mode: core.ModeCrawl, Workers: *workers, Shards: *shards,
		StorePath: *out, SkipPoC: true,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if _, err := core.Run(ctx, cfg); err != nil {
		log.Fatalf("crawl: %v", err)
	}
	fmt.Printf("crawled %d domains x %d weeks into %s\n", *domains, *weeks, *out)
}
