// Command crawl runs the study's real collection pipeline: it serves the
// synthetic web on a loopback HTTP listener, crawls every domain every
// snapshot week with the concurrent crawler, fingerprints each landing
// page (with a per-shard content-hash memo cache, since most pages are
// week-over-week identical), and stores the resulting observations.
//
// Usage:
//
//	crawl -domains 2000 -weeks 50 -workers 64 -shards 4 -out crawl.jsonl.gz
//	crawl -shards 4 -segments 4 -out crawl.store -cpuprofile crawl.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"clientres/internal/core"
	"clientres/internal/prof"
	"clientres/internal/webgen"
)

func main() {
	domains := flag.Int("domains", 2000, "number of ranked domains to model")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "number of weekly snapshots")
	seed := flag.Int64("seed", 1, "generation seed")
	workers := flag.Int("workers", 64, "concurrent crawler workers")
	shards := flag.Int("shards", 1, "parallel fingerprint/analysis shards (results identical to -shards 1)")
	segments := flag.Int("segments", 1, "store segments; >1 writes a segmented store directory (reads identical to a single file)")
	fpcache := flag.Int("fpcache", 0, "per-shard fingerprint memo entries (0 = default, negative = disable)")
	out := flag.String("out", "crawl.jsonl.gz", "output path (gzip JSONL file, or a directory with -segments > 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		log.Fatalf("crawl: %v", err)
	}

	cfg := core.Config{
		Domains: *domains, Weeks: *weeks, Seed: *seed,
		Mode: core.ModeCrawl, Workers: *workers, Shards: *shards,
		StorePath: *out, StoreSegments: *segments,
		FingerprintCacheSize: *fpcache,
		SkipPoC:              true,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	_, err = core.Run(ctx, cfg)
	stopCPU()
	if err != nil {
		log.Fatalf("crawl: %v", err)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		log.Fatalf("crawl: %v", err)
	}
	fmt.Printf("crawled %d domains x %d weeks into %s\n", *domains, *weeks, *out)
}
