// Command gendata generates a synthetic-web observation dataset — the
// offline stand-in for the paper's four-year Alexa-1M crawl — and writes it
// as gzip JSONL for cmd/analyze.
//
// Usage:
//
//	gendata -domains 20000 -weeks 201 -seed 1 -out observations.jsonl.gz
//	gendata -domains 20000 -segments 8 -out observations.store
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"clientres/internal/core"
	"clientres/internal/webgen"
)

func main() {
	domains := flag.Int("domains", 20000, "number of ranked domains to model")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "number of weekly snapshots")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "observations.jsonl.gz", "output path (gzip JSONL file, or a directory with -segments > 1)")
	segments := flag.Int("segments", 1, "store segments; >1 writes a segmented store directory (reads identical to a single file)")
	bundleFrac := flag.Float64("bundle-frac", 0, "fraction of eligible generated sites that ship their libraries as one bundled script (0 disables)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	cfg := core.Config{
		Domains: *domains, Weeks: *weeks, Seed: *seed,
		Bundling:  webgen.DefaultBundling(*bundleFrac),
		StorePath: *out, StoreSegments: *segments, SkipPoC: true,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if _, err := core.Run(context.Background(), cfg); err != nil {
		log.Fatalf("gendata: %v", err)
	}
	fmt.Printf("wrote %d domains x %d weeks to %s\n", *domains, *weeks, *out)
}
