// Command coordinator runs the distributed crawl plane's control point:
// it owns the study frontier, leases domain partitions to workers over
// HTTP/JSON, expires leases whose heartbeats stop, reassigns the
// partition to a surviving worker at the last accepted week, and — once
// every partition is fully committed — seals and merges the workers'
// generation stores into the study report, byte-identical to a serial
// crawl of the same configuration.
//
// Assignment state persists atomically to <dir>/coordinator.json after
// every transition; restarting the coordinator over the same directory
// rehydrates leases and accepted spans instead of restarting the crawl.
//
// Usage:
//
//	coordinator -addr 127.0.0.1:7700 -domains 2000 -weeks 50 -partitions 4 -dir run.dist -out report.txt
//	coordinator -addr 127.0.0.1:7700 -dir run.dist -out report.txt   # restart: rehydrates run.dist/coordinator.json
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"clientres/internal/distcrawl"
	"clientres/internal/webgen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address for the worker protocol")
	domains := flag.Int("domains", 2000, "number of ranked domains to model")
	weeks := flag.Int("weeks", webgen.StudyWeeks, "number of weekly snapshots")
	seed := flag.Int64("seed", 1, "generation seed")
	partitions := flag.Int("partitions", 4, "domain-hash partitions (the unit of assignment and failure recovery)")
	dir := flag.String("dir", "crawl.dist", "store root shared with the workers (generation stores and coordinator.json live here)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "how long an assignment survives without a heartbeat before reassignment")
	bundleFrac := flag.Float64("bundle-frac", 0, "fraction of eligible generated sites that ship bundles (as cmd/crawl)")
	bundleScan := flag.Bool("bundle-scan", false, "workers fetch and scan same-site scripts (as cmd/crawl)")
	out := flag.String("out", "", "write the merged study report here after the run completes (empty = merge skipped)")
	poll := flag.Duration("poll", 200*time.Millisecond, "completion poll interval")
	flag.Parse()

	spec := distcrawl.RunSpec{
		Domains: *domains, Weeks: *weeks, Seed: *seed,
		Bundling:   webgen.DefaultBundling(*bundleFrac),
		BundleScan: *bundleScan,
		Partitions: *partitions,
		Dir:        *dir,
		LeaseTTL:   *leaseTTL,
	}
	coord, err := distcrawl.NewCoordinator(spec)
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	coord.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "coordinator: "+format+"\n", args...)
	}
	// The rehydrated spec is authoritative on restart (the study flags
	// must match it; NewCoordinator already refused a mismatch).
	spec = coord.Spec()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("coordinator: %v", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "coordinator: serving %d partitions of %d domains x %d weeks on %s\n",
		spec.Partitions, spec.Domains, spec.Weeks, ln.Addr())

	for !coord.Done() {
		time.Sleep(*poll)
	}
	st := coord.Status()
	m := st.Metrics
	fmt.Fprintf(os.Stderr,
		"coordinator: run complete: %d spans; attempts=%d successes=%d conn_failures=%d bytes=%d fetch_p50=%s fetch_p99=%s\n",
		len(st.Spans), m.Attempts, m.Successes, m.ConnFailures, m.Bytes, m.FetchP50, m.FetchP99)
	// Linger briefly so polling workers observe Done and exit cleanly.
	time.Sleep(2 * *poll)
	_ = srv.Close()

	if *out != "" {
		res, err := distcrawl.Merge(spec, st.Spans, distcrawl.MergeOptions{})
		if err != nil {
			log.Fatalf("coordinator: merge: %v", err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		res.WriteReport(f)
		if err := f.Close(); err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		fmt.Fprintf(os.Stderr, "coordinator: merged report -> %s\n", *out)
	}
}
