// Command worker runs one crawl worker of the distributed plane: it
// registers with the coordinator, receives the study configuration,
// regenerates the identical synthetic web from the seed, and then crawls
// leased domain partitions week by week — committing each completed week
// to its own generation store first, then to the coordinator — while a
// heartbeat goroutine keeps the lease alive. If the lease is lost (the
// worker stalled, was partitioned, or the coordinator restarted it away)
// the assignment is abandoned where it stands and the worker leases anew.
//
// Usage:
//
//	worker -coordinator http://127.0.0.1:7700 -id w1
//	worker -coordinator http://127.0.0.1:7700 -id w2 -workers 32 -fetch-timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"clientres/internal/distcrawl"
)

func main() {
	coordURL := flag.String("coordinator", "http://127.0.0.1:7700", "coordinator base URL")
	id := flag.String("id", "", "worker name in the protocol (default: worker-<pid>)")
	workers := flag.Int("workers", 64, "concurrent crawler workers per assignment")
	fetchTimeout := flag.Duration("fetch-timeout", 0, "per-page fetch deadline covering all retries and script fetches (0 disables; an expired fetch records the usual status-0 observation)")
	wait := flag.Duration("wait", 10*time.Second, "how long to keep retrying the first registration before giving up")
	flag.Parse()

	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	w := &distcrawl.Worker{
		ID:           *id,
		Coord:        &distcrawl.Client{BaseURL: *coordURL},
		CrawlWorkers: *workers,
		FetchTimeout: *fetchTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	// The coordinator may start a beat after us; retry registration for a
	// bounded window, then treat the run as begun: once registered, any
	// later coordinator disappearance is the run ending (it merges and
	// exits before its workers poll their way out), not a worker failure.
	start := time.Now()
	for {
		err := w.Run(ctx)
		if err == nil || ctx.Err() != nil {
			return
		}
		if time.Since(start) < *wait {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		log.Printf("worker %s: coordinator gone: %v", *id, err)
		return
	}
}
