// Command fsck verifies and repairs segmented observation stores — the
// recovery tool for crawls that died mid-run.
//
// Three modes:
//
//	fsck -store crawl.store           # verify: full checksum replay, counts
//	                                  # cross-checked against the manifest
//	fsck -store crawl.store -stats    # inspect: report manifest, checkpoint,
//	                                  # and per-segment state, judge nothing
//	fsck -store crawl.store -repair   # salvage: restore the store to its
//	                                  # last checkpoint, or to each segment's
//	                                  # longest valid record prefix
//
// Verify exits non-zero on any integrity failure, so it drops into shell
// pipelines and CI. Repair never loses committed weeks: a checkpointed
// store that cannot be restored to its committed state is an error, not a
// shorter archive.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clientres/internal/store"
	"clientres/internal/wexbundle"
)

func main() {
	dir := flag.String("store", "", "segmented store directory to check")
	repair := flag.Bool("repair", false, "salvage the store in place instead of verifying")
	stats := flag.Bool("stats", false, "inspect and report state without verifying or repairing")
	flag.Parse()
	if *dir == "" {
		log.Fatal("fsck: -store is required")
	}

	switch {
	case *stats:
		in, err := store.Inspect(*dir)
		if err != nil {
			log.Fatalf("fsck: %v", err)
		}
		printInspection(in)
	case *repair:
		res, err := store.Salvage(*dir)
		if err != nil {
			log.Fatalf("fsck: %v", err)
		}
		switch {
		case res.Intact:
			fmt.Printf("%s: intact (%d segments, %d records) — nothing to repair\n",
				*dir, res.Segments, res.Total)
		case res.FromCheckpoint:
			fmt.Printf("%s: restored to last checkpoint (%d segments, %d records; %d torn segments, %d bytes amputated)\n",
				*dir, res.Segments, res.Total, res.TornSegments, res.DroppedBytes)
		default:
			fmt.Printf("%s: salvaged by prefix scan (%d segments, %d records kept; %d torn segments)\n",
				*dir, res.Segments, res.Total, res.TornSegments)
		}
	default:
		in, err := store.Verify(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
			fmt.Fprintf(os.Stderr, "fsck: %s FAILED verification — run with -repair to salvage\n", *dir)
			os.Exit(1)
		}
		salvaged := ""
		if in.Manifest.Salvaged {
			salvaged = " (salvaged archive)"
		}
		fmt.Printf("%s: ok — %s, %d segments, %d records, all checksums valid%s\n",
			*dir, formatName(in.Manifest.Version), in.Manifest.Segments, in.TotalRecords, salvaged)
		if in.Manifest.Version == store.FormatBundle {
			if err := printBundleStats(*dir); err != nil {
				log.Fatalf("fsck: %v", err)
			}
		}
	}
}

// printBundleStats renders a verified bundle's per-week recording profile:
// archived fetches, landing pages among them, raw body bytes, and
// preserved failures.
func printBundleStats(dir string) error {
	stats, err := wexbundle.Stats(dir)
	if err != nil {
		return err
	}
	fmt.Printf("  week  records    pages   body bytes  failures\n")
	var recs, pages, fails int
	var bytes int64
	for _, st := range stats {
		fmt.Printf("  %4d  %7d  %7d  %11d  %8d\n",
			st.Week, st.Records, st.Pages, st.BodyBytes, st.Failures)
		recs += st.Records
		pages += st.Pages
		bytes += st.BodyBytes
		fails += st.Failures
	}
	fmt.Printf("  all   %7d  %7d  %11d  %8d\n", recs, pages, bytes, fails)
	return nil
}

// formatName renders a store format / manifest version for humans.
func formatName(v int) string {
	switch v {
	case store.FormatPlain:
		return "format v1 (plain JSONL)"
	case store.FormatFramed:
		return "format v2 (framed records)"
	case store.FormatDelta:
		return "format v3 (delta streams)"
	case store.FormatBundle:
		return "format v4 (web-execution bundle)"
	case 0:
		return "format unknown (empty)"
	default:
		return fmt.Sprintf("format v%d (unrecognized)", v)
	}
}

func printInspection(in store.Inspection) {
	fmt.Printf("store %s\n", in.Dir)
	switch {
	case in.HasManifest:
		fmt.Printf("  manifest: v%d, %d segments, %d records declared, salvaged=%v\n",
			in.Manifest.Version, in.Manifest.Segments, in.Manifest.Total, in.Manifest.Salvaged)
	case in.ManifestErr != "":
		fmt.Printf("  manifest: CORRUPT (%s)\n", in.ManifestErr)
	default:
		fmt.Printf("  manifest: missing (crashed or in-progress run)\n")
	}
	switch {
	case in.HasCheckpoint:
		fmt.Printf("  checkpoint: %s, %d weeks committed, %d records (run seed=%d domains=%d weeks=%d)\n",
			formatName(in.Checkpoint.Format), in.Checkpoint.CommittedWeeks, in.Checkpoint.Total,
			in.Checkpoint.Run.Seed, in.Checkpoint.Run.Domains, in.Checkpoint.Run.Weeks)
	case in.CheckpointErr != "":
		fmt.Printf("  checkpoint: CORRUPT (%s)\n", in.CheckpointErr)
	default:
		fmt.Printf("  checkpoint: none\n")
	}
	for _, seg := range in.Segments {
		state := "clean"
		if seg.Truncated {
			state = "TORN: " + seg.Err
		}
		fmt.Printf("  seg %04d: %s, %8d bytes, %3d members, %7d records, %s\n",
			seg.Index, formatName(seg.Format), seg.SizeBytes, seg.Members, seg.Records, state)
	}
	fmt.Printf("  total decodable records: %d\n", in.TotalRecords)
}
