package clientres

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - crawler worker-pool sizing (the collection bottleneck),
//   - the single-pass multi-collector runner vs one pass per collector,
//   - the naive-backtracking ReDoS engine's step growth with input size
//     (why a step budget, not wall-clock, is the DoS signal),
//   - ground-truth collection vs rendering+fingerprinting (why the direct
//     path exists for large populations),
//   - shard count for the parallel collection pipeline (speedup scales with
//     available cores; results are byte-identical at every shard count).

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"clientres/internal/analysis"
	"clientres/internal/core"
	"clientres/internal/crawler"
	"clientres/internal/fingerprint"
	"clientres/internal/poclab"
	"clientres/internal/semver"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

// BenchmarkAblationCrawlWorkers measures one crawl week under different
// worker-pool sizes.
func BenchmarkAblationCrawlWorkers(b *testing.B) {
	eco := webgen.New(webgen.Config{Domains: 200, Seed: 3})
	srv := httptest.NewServer(webserver.New(eco))
	defer srv.Close()
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	for _, workers := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := crawler.New(crawler.Config{BaseURL: srv.URL, Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.CrawlWeek(context.Background(), i%eco.Cfg.Weeks, domains,
					func(crawler.Page) {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSinglePass replays the dataset once through all
// collectors together — the production design.
func BenchmarkAblationSinglePass(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay(obs,
			analysis.NewCollection(weeks),
			analysis.NewLibraryStats(weeks),
			analysis.NewVulnPrevalence(weeks),
			analysis.NewSRI(weeks),
			analysis.NewFlash(weeks, benchDomains),
			analysis.NewWordPress(weeks),
		)
	}
}

// BenchmarkAblationMultiPass replays the dataset once per collector — the
// alternative the runner design avoids.
func BenchmarkAblationMultiPass(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay(obs, analysis.NewCollection(weeks))
		replay(obs, analysis.NewLibraryStats(weeks))
		replay(obs, analysis.NewVulnPrevalence(weeks))
		replay(obs, analysis.NewSRI(weeks))
		replay(obs, analysis.NewFlash(weeks, benchDomains))
		replay(obs, analysis.NewWordPress(weeks))
	}
}

// BenchmarkAblationShards runs the direct collection pipeline at different
// shard counts over one generated population. Sharding parallelizes both
// the ground-truth resolution and the collector folds; the merge at the end
// is O(aggregate size), so the speedup approaches the core count while the
// report stays byte-identical (proven by the shard equivalence tests).
func BenchmarkAblationShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(context.Background(), core.Config{
					Domains: 1500, Weeks: 12, Seed: 7,
					SkipPoC: true, Shards: shards,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReDoSInputSize shows the step blow-up of the vulnerable
// duration pattern with attack-input length — the reason the PoC lab uses a
// bounded step counter instead of wall-clock time.
func BenchmarkAblationReDoSInputSize(b *testing.B) {
	env, err := poclab.NewEnv("moment", semver.MustParse("2.10.6"))
	if err != nil {
		b.Fatal(err)
	}
	for _, units := range []int{6, 10, 14, 18} {
		input := ""
		for i := 0; i < units; i++ {
			input += "1 "
		}
		input += "x"
		b.Run(fmt.Sprintf("units=%d", units), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.Moment().ParseDuration(input)
			}
		})
	}
}

// BenchmarkAblationTruthVsCrawlPath compares the per-page cost of the two
// collection paths: resolving ground truth directly vs rendering the page
// and fingerprinting it back.
func BenchmarkAblationTruthVsCrawlPath(b *testing.B) {
	eco := webgen.New(webgen.Config{Domains: 64, Seed: 3})
	b.Run("truth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			site := i % 64
			_ = analysis.ObservationFromTruth(eco.Sites[site].Domain, eco.Truth(site, i%eco.Cfg.Weeks))
		}
	})
	b.Run("render+fingerprint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			site := i % 64
			week := i % eco.Cfg.Weeks
			html, status := eco.PageHTML(site, week)
			var det fingerprint.Detection
			if status == 200 {
				det = fingerprint.Page(html, eco.Sites[site].Domain.Name)
			}
			_ = analysis.ObservationFromCrawl(eco.Sites[site].Domain, week, status, html, det)
		}
	})
}
