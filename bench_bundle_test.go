package clientres

// Record/replay throughput ablation. BenchmarkBundleRecord crawls one
// synthetic week over loopback HTTP plain and recording into a
// web-execution bundle, pricing the archive tax (JSON encode + gzip +
// segment routing on every fetch). BenchmarkBundleReplay crawls the same
// week from the mounted bundle — no sockets, no server, no listener in
// the loop at all — measuring the zero-network crawl. Both report
// pages/s; `make bench-bundle` appends machine-readable results to
// BENCH_bundle.json.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"clientres/internal/crawler"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
	"clientres/internal/wexbundle"
)

func bundleBenchEco(b *testing.B) (*webgen.Ecosystem, []string) {
	b.Helper()
	eco := webgen.New(webgen.Config{Domains: 300, Seed: 9})
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	return eco, domains
}

func crawlWeekLoop(b *testing.B, cr *crawler.Crawler, week int, domains []string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := cr.CrawlWeek(context.Background(), week, domains, func(crawler.Page) {}); err != nil {
			b.Fatal(err)
		}
	}
}

func reportPages(b *testing.B, domains []string) {
	pages := float64(b.N) * float64(len(domains))
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(pages/sec, "pages/s")
	}
}

func BenchmarkBundleRecord(b *testing.B) {
	for _, mode := range []string{"plain", "record"} {
		b.Run(mode, func(b *testing.B) {
			eco, domains := bundleBenchEco(b)
			srv := httptest.NewServer(webserver.New(eco))
			defer srv.Close()
			cfg := crawler.Config{BaseURL: srv.URL, Workers: 32}
			var bw *wexbundle.Writer
			if mode == "record" {
				var err error
				bw, err = wexbundle.Create(filepath.Join(b.TempDir(), "bundle"), wexbundle.Options{Segments: 1})
				if err != nil {
					b.Fatal(err)
				}
				cfg.WrapTransport = func(inner http.RoundTripper) http.RoundTripper {
					return &wexbundle.RecordingTransport{Inner: inner, W: bw}
				}
			}
			cr := crawler.New(cfg)
			b.ResetTimer()
			crawlWeekLoop(b, cr, 0, domains)
			b.StopTimer()
			reportPages(b, domains)
			if bw != nil {
				if err := bw.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBundleReplay(b *testing.B) {
	eco, domains := bundleBenchEco(b)
	srv := httptest.NewServer(webserver.New(eco))
	dir := filepath.Join(b.TempDir(), "bundle")
	bw, err := wexbundle.Create(dir, wexbundle.Options{Segments: 1})
	if err != nil {
		b.Fatal(err)
	}
	rec := crawler.New(crawler.Config{
		BaseURL: srv.URL, Workers: 32,
		WrapTransport: func(inner http.RoundTripper) http.RoundTripper {
			return &wexbundle.RecordingTransport{Inner: inner, W: bw}
		},
	})
	if err := rec.CrawlWeek(context.Background(), 0, domains, func(crawler.Page) {}); err != nil {
		b.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		b.Fatal(err)
	}
	srv.Close() // the replay loop must not need it

	bun, err := wexbundle.Mount(dir)
	if err != nil {
		b.Fatal(err)
	}
	cr := crawler.New(crawler.Config{
		BaseURL: "http://wexbundle.invalid", Workers: 32,
		WrapTransport: func(http.RoundTripper) http.RoundTripper { return bun.Transport() },
	})
	b.ResetTimer()
	crawlWeekLoop(b, cr, 0, domains)
	b.StopTimer()
	reportPages(b, domains)
}
