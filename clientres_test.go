package clientres

import (
	"context"
	"strings"
	"testing"
)

func TestRunAndHeadline(t *testing.T) {
	res, err := Run(context.Background(), Config{Domains: 400, Weeks: 40, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Headline()
	if s.MeanCollected <= 0 || s.MeanCollected > 400 {
		t.Errorf("MeanCollected = %.1f", s.MeanCollected)
	}
	if s.VulnerableShareTVV < s.VulnerableShareCVE {
		t.Error("TVV share must be >= CVE share")
	}
	if s.TotalCVEs != 27 {
		t.Errorf("TotalCVEs = %d", s.TotalCVEs)
	}
	if s.IncorrectCVEs < 12 || s.IncorrectCVEs > 14 {
		t.Errorf("IncorrectCVEs = %d, want ~13", s.IncorrectCVEs)
	}
	if s.WordPressShare < 0.18 || s.WordPressShare > 0.36 {
		t.Errorf("WordPressShare = %.3f", s.WordPressShare)
	}
	var b strings.Builder
	res.WriteReport(&b)
	if !strings.Contains(b.String(), "Figure 12") {
		t.Error("report missing figures")
	}
}

func TestRunCrawlMode(t *testing.T) {
	res, err := Run(context.Background(), Config{Domains: 120, Weeks: 8, Seed: 5, Crawl: true, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Headline().MeanCollected <= 0 {
		t.Error("crawl mode collected nothing")
	}
}

func TestAuditPage(t *testing.T) {
	html := `<!DOCTYPE html><html><head>
<script src="https://code.jquery.com/jquery-1.12.4.min.js"></script>
<script src="https://maxcdn.bootstrapcdn.com/bootstrap/3.3.7/js/bootstrap.min.js"></script>
<script src="/assets/js/moment-2.10.6.min.js"></script>
</head><body>
<embed src="/x.swf" allowscriptaccess="always">
</body></html>`
	rep := AuditPage(html, "example.com")
	if len(rep.Libraries) != 3 {
		t.Fatalf("libraries = %v", rep.Libraries)
	}
	byAdv := map[string]AuditFinding{}
	for _, f := range rep.Findings {
		byAdv[f.Advisory] = f
	}
	// jQuery 1.12.4 is hit by the 2020 prefilter CVEs and CVE-2019-11358.
	if _, ok := byAdv["CVE-2020-11023"]; !ok {
		t.Errorf("missing CVE-2020-11023: %+v", rep.Findings)
	}
	if f, ok := byAdv["CVE-2019-11358"]; !ok || f.FixedIn != "3.4.0" {
		t.Errorf("CVE-2019-11358 finding wrong: %+v", f)
	}
	// CVE-2020-7656: 1.12.4 is outside the CVE range but inside the TVV —
	// the audit must surface it (and not as PerCVEOnly).
	if f, ok := byAdv["CVE-2020-7656"]; !ok || f.PerCVEOnly {
		t.Errorf("CVE-2020-7656 TVV finding wrong: %+v", f)
	}
	// Bootstrap 3.3.7 is hit by CVE-2019-8331 among others.
	if _, ok := byAdv["CVE-2019-8331"]; !ok {
		t.Error("missing bootstrap finding")
	}
	// Moment 2.10.6 is TVV-vulnerable to CVE-2016-4055.
	if _, ok := byAdv["CVE-2016-4055"]; !ok {
		t.Error("missing moment finding")
	}
	if rep.MissingSRI != 2 {
		t.Errorf("MissingSRI = %d, want 2 (external without integrity)", rep.MissingSRI)
	}
	if !rep.UsesFlash || !rep.InsecureFlash {
		t.Error("flash flags wrong")
	}
}

func TestAuditPageClean(t *testing.T) {
	html := `<script src="https://code.jquery.com/jquery-3.6.0.min.js" integrity="sha384-x" crossorigin="anonymous"></script>`
	rep := AuditPage(html, "example.com")
	if len(rep.Findings) != 0 {
		t.Errorf("jQuery 3.6.0 should be clean, got %+v", rep.Findings)
	}
	if rep.MissingSRI != 0 || rep.UsesFlash {
		t.Errorf("hygiene flags wrong: %+v", rep)
	}
}

func TestAuditPagePerCVEOnly(t *testing.T) {
	// jQuery 1.2.6 is inside CVE-2020-11022's disclosed range but outside
	// its validated TVV — the audit flags it as a CVE-range-only match.
	rep := AuditPage(`<script src="/js/jquery-1.2.6.min.js"></script>`, "example.com")
	found := false
	for _, f := range rep.Findings {
		if f.Advisory == "CVE-2020-11022" {
			found = true
			if !f.PerCVEOnly {
				t.Error("CVE-2020-11022 on 1.2.6 should be PerCVEOnly (overstated range)")
			}
		}
	}
	if !found {
		t.Error("CVE-2020-11022 range match missing")
	}
}

func TestValidateCVEs(t *testing.T) {
	findings, err := ValidateCVEs()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 27 {
		t.Fatalf("findings = %d", len(findings))
	}
	classes := map[string]int{}
	for _, f := range findings {
		classes[f.Accuracy]++
		if f.Advisory == "" || f.Library == "" || f.CVERange == "" {
			t.Errorf("incomplete finding %+v", f)
		}
	}
	if classes["understated"]+classes["mixed"] == 0 || classes["overstated"] == 0 {
		t.Errorf("accuracy class mix = %v", classes)
	}
}

func TestWeekDate(t *testing.T) {
	if WeekDate(0).Year() != 2018 {
		t.Error("study starts 2018")
	}
	if StudyWeeks != 201 {
		t.Error("study is 201 weeks")
	}
}
