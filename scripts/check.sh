#!/bin/sh
# Full verification gate: vet, build, race-enabled tests, and short smoke
# runs of every fuzz target. Run from the repository root (or via
# `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

# Budgeted fuzz smoke runs: a few seconds each, enough to catch shallow
# regressions on every change without turning CI into a fuzzing farm.
FUZZTIME="${FUZZTIME:-3s}"
echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run '^$' -fuzz '^FuzzTokenize$' -fuzztime "$FUZZTIME" ./internal/htmlx
go test -run '^$' -fuzz '^FuzzParseVersion$' -fuzztime "$FUZZTIME" ./internal/semver
go test -run '^$' -fuzz '^FuzzRange$' -fuzztime "$FUZZTIME" ./internal/semver
go test -run '^$' -fuzz '^FuzzAuditHandler$' -fuzztime "$FUZZTIME" ./internal/service
go test -run '^$' -fuzz '^FuzzSignatureScan$' -fuzztime "$FUZZTIME" ./internal/fingerprint

# One-iteration bench smoke of the store/fingerprint/serve perf ablations:
# not a measurement, just proof the benchmarks still build, run, and verify
# their own observation counts (BenchmarkServeAudit additionally reconciles
# the service's /metrics counters against the load it generated).
echo "==> bench smoke (store read/write/decode + fingerprint memo + signature scan + serve audit, 1 iteration)"
go test -run '^$' -bench 'BenchmarkStoreReadSegments|BenchmarkStoreDecodeSegment|BenchmarkStoreWrite|BenchmarkFingerprintMemo|BenchmarkSignatureScan|BenchmarkServeAudit|BenchmarkServeBatch' \
	-benchmem -benchtime 1x .

# Chaos-crawl smoke: an end-to-end cmd/crawl run with fault injection and
# the resilience layer on. Proves the fault drill terminates and the
# pipeline survives stalls, resets, truncations, and slow-loris drips.
echo "==> chaos crawl smoke (fault-injected end-to-end run)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/crawl -domains 40 -weeks 3 -chaos 0.3 -politeness \
	-out "$tmp/chaos.jsonl.gz" >/dev/null

# Bundled-mode smoke: generate a bundling population, crawl it with
# script-body fetching + signature scanning on, and prove the analyzer's
# bundle-scan summary reports signature-recovered detections end-to-end.
# The direct-mode gendata store of the same population is the reference:
# its summary counts the bundled ground truth the crawl must recover.
echo "==> bundled crawl smoke (gendata -> crawl -bundle-scan -> analyze)"
go run ./cmd/gendata -domains 40 -weeks 3 -bundle-frac 0.8 -quiet \
	-out "$tmp/bundled-truth.jsonl.gz" >/dev/null
go run ./cmd/analyze -in "$tmp/bundled-truth.jsonl.gz" -weeks 3 -domains 40 \
	-bundle-scan >"$tmp/bundled-truth.report"
go run ./cmd/crawl -domains 40 -weeks 3 -bundle-frac 0.8 -bundle-scan \
	-out "$tmp/bundled.jsonl.gz" >/dev/null
go run ./cmd/analyze -in "$tmp/bundled.jsonl.gz" -weeks 3 -domains 40 \
	-bundle-scan >"$tmp/bundled.report"
for rep in "$tmp/bundled-truth.report" "$tmp/bundled.report"; do
	grep -q 'Bundle-scan summary' "$rep"
	sigs=$(sed -n 's/.*signature-recovered library detections: *\([0-9]*\) \/.*/\1/p' "$rep")
	[ "${sigs:-0}" -gt 0 ] || {
		echo "$rep: no signature-recovered detections in a bundled run"; exit 1; }
done

# Crash-recovery smoke: SIGKILL a checkpointed crawl mid-run, fsck the
# wreckage, resume, and prove the final report is byte-identical to an
# uninterrupted run of the same configuration. This is the end-to-end
# version of the crash-equivalence tests: a real process killed with a
# real signal, recovered by the real commands.
echo "==> crash-recovery smoke (SIGKILL mid-crawl, fsck, resume, diff reports)"
go build -o "$tmp/crawl" ./cmd/crawl
go build -o "$tmp/fsck" ./cmd/fsck
go build -o "$tmp/analyze" ./cmd/analyze
CRAWL_ARGS="-domains 80 -weeks 60 -seed 3 -workers 16 -segments 2 -checkpoint"

# Uninterrupted reference.
"$tmp/crawl" $CRAWL_ARGS -out "$tmp/ref.store" 2>/dev/null >/dev/null
"$tmp/analyze" -in "$tmp/ref.store" -weeks 60 -domains 80 >"$tmp/ref.report"

# The victim: same run, killed with SIGKILL once at least two weeks have
# committed.
"$tmp/crawl" $CRAWL_ARGS -out "$tmp/crash.store" 2>"$tmp/crash.log" >/dev/null &
crawl_pid=$!
killed=""
for _ in $(seq 1 600); do
	if ! kill -0 "$crawl_pid" 2>/dev/null; then
		break # finished before we could kill it
	fi
	n=$(grep -c 'committed' "$tmp/crash.log" 2>/dev/null) || n=0
	if [ "${n:-0}" -ge 2 ]; then
		kill -KILL "$crawl_pid"
		killed=yes
		break
	fi
	sleep 0.02
done
wait "$crawl_pid" 2>/dev/null || true
[ -n "$killed" ] || { echo "crawl finished before SIGKILL could land; smoke inconclusive"; exit 1; }

# The kill left no manifest: verification must fail, repair must restore
# the store to its last checkpoint, and verification must then pass.
if "$tmp/fsck" -store "$tmp/crash.store" >/dev/null 2>&1; then
	echo "fsck verified a crashed store as intact"; exit 1
fi
"$tmp/fsck" -store "$tmp/crash.store" -stats
"$tmp/fsck" -store "$tmp/crash.store" -repair
"$tmp/fsck" -store "$tmp/crash.store"

# Resume, then prove the recovered run equals the uninterrupted one.
"$tmp/crawl" $CRAWL_ARGS -resume -out "$tmp/crash.store" 2>/dev/null >/dev/null
"$tmp/fsck" -store "$tmp/crash.store"
"$tmp/analyze" -in "$tmp/crash.store" -weeks 60 -domains 80 >"$tmp/crash.report"
cmp "$tmp/ref.report" "$tmp/crash.report" || {
	echo "resumed run's report differs from the uninterrupted reference"; exit 1; }

# Bundle record/replay smoke: record a checkpointed crawl into a
# web-execution bundle, SIGKILL it mid-run, fsck both wrecks, resume, and
# prove (a) the resumed store's report equals the uninterrupted reference,
# (b) `analyze -bundle` re-audits the resumed bundle to the byte-identical
# report, (c) a zero-network `crawl -replay` of the bundle reproduces the
# same report, and (d) fsck detects a flipped byte in a sealed bundle
# segment.
echo "==> bundle smoke (record, SIGKILL, fsck, resume, replay, diff reports)"
BUNDLE_ARGS="-domains 60 -weeks 40 -seed 11 -workers 16 -segments 2 -checkpoint"

# Uninterrupted reference: store and bundle recorded side by side.
"$tmp/crawl" $BUNDLE_ARGS -record "$tmp/ref.bundle" -out "$tmp/bref.store" 2>/dev/null >/dev/null
"$tmp/fsck" -store "$tmp/ref.bundle" | grep -q 'format v4'
"$tmp/analyze" -in "$tmp/bref.store" -weeks 40 -domains 60 >"$tmp/bref.report"

# The victim recording, killed once at least two weeks have committed.
"$tmp/crawl" $BUNDLE_ARGS -record "$tmp/bcrash.bundle" -out "$tmp/bcrash.store" 2>"$tmp/bcrash.log" >/dev/null &
crawl_pid=$!
killed=""
for _ in $(seq 1 600); do
	if ! kill -0 "$crawl_pid" 2>/dev/null; then
		break # finished before we could kill it
	fi
	n=$(grep -c 'committed' "$tmp/bcrash.log" 2>/dev/null) || n=0
	if [ "${n:-0}" -ge 2 ]; then
		kill -KILL "$crawl_pid"
		killed=yes
		break
	fi
	sleep 0.02
done
wait "$crawl_pid" 2>/dev/null || true
[ -n "$killed" ] || { echo "recording finished before SIGKILL could land; smoke inconclusive"; exit 1; }

# Neither archive was sealed: fsck must refuse both, and repair must
# restore each to its last checkpoint (the bundle commits each week first,
# so it is never behind the store).
if "$tmp/fsck" -store "$tmp/bcrash.bundle" >/dev/null 2>&1; then
	echo "fsck verified a crashed bundle as intact"; exit 1
fi
"$tmp/fsck" -store "$tmp/bcrash.bundle" -repair
"$tmp/fsck" -store "$tmp/bcrash.bundle" -stats | grep -q 'format v4'
if "$tmp/fsck" -store "$tmp/bcrash.store" >/dev/null 2>&1; then
	echo "fsck verified a crashed store as intact"; exit 1
fi
"$tmp/fsck" -store "$tmp/bcrash.store" -repair

# Resume re-records only the uncommitted suffix; the recovered run must
# equal the uninterrupted one.
"$tmp/crawl" $BUNDLE_ARGS -resume -record "$tmp/bcrash.bundle" -out "$tmp/bcrash.store" 2>/dev/null >/dev/null
"$tmp/fsck" -store "$tmp/bcrash.bundle"
"$tmp/fsck" -store "$tmp/bcrash.store"
"$tmp/analyze" -in "$tmp/bcrash.store" -weeks 40 -domains 60 >"$tmp/bcrash.report"
cmp "$tmp/bref.report" "$tmp/bcrash.report" || {
	echo "resumed recording's report differs from the uninterrupted reference"; exit 1; }

# Replay-audit the resumed bundle (run parameters default from
# bundle.json): byte-identical report, zero network.
"$tmp/analyze" -bundle "$tmp/bcrash.bundle" >"$tmp/bundle.report"
cmp "$tmp/bref.report" "$tmp/bundle.report" || {
	echo "analyze -bundle report differs from the live run that recorded it"; exit 1; }

# A zero-network crawl replayed from the bundle writes a store whose
# report is also byte-identical.
"$tmp/crawl" $BUNDLE_ARGS -replay "$tmp/bcrash.bundle" -out "$tmp/breplay.store" 2>/dev/null >/dev/null
"$tmp/analyze" -in "$tmp/breplay.store" -weeks 40 -domains 60 >"$tmp/breplay.report"
cmp "$tmp/bref.report" "$tmp/breplay.report" || {
	echo "replayed crawl's report differs from the live run that recorded it"; exit 1; }

# Corruption: flip one byte in the middle of a sealed bundle segment;
# verification must fail loudly.
seg="$tmp/ref.bundle/seg-0000.jsonl.gz"
size=$(wc -c <"$seg")
off=$((size / 2))
byte=$(od -An -tu1 -j "$off" -N 1 "$seg" | tr -dc '0-9')
printf "$(printf '\\%03o' $((byte ^ 64)))" |
	dd of="$seg" bs=1 seek="$off" conv=notrunc 2>/dev/null
if "$tmp/fsck" -store "$tmp/ref.bundle" >/dev/null 2>&1; then
	echo "fsck verified a bit-flipped bundle as intact"; exit 1
fi

# Distributed-crawl smoke: a coordinator and three workers crawl the
# study under partitioned leases; one worker is SIGKILLed after its first
# committed week. The coordinator must expire the dead worker's lease,
# reassign its partition at the last accepted week, and the merged report
# must be byte-identical to a serial crawl of the same configuration —
# the end-to-end version of the distcrawl byte-identity tests: real
# processes, a real SIGKILL, a real lease expiry and reassignment.
echo "==> distributed crawl smoke (coordinator + 3 workers, SIGKILL one, reassign, merge, diff vs serial)"
go build -o "$tmp/coordinator" ./cmd/coordinator
go build -o "$tmp/worker" ./cmd/worker
DIST_ARGS="-domains 100 -weeks 8 -seed 5"

# Serial reference through the ordinary pipeline.
"$tmp/crawl" $DIST_ARGS -workers 16 -out "$tmp/dist-ref.store" 2>/dev/null >/dev/null
"$tmp/analyze" -in "$tmp/dist-ref.store" -weeks 8 -domains 100 >"$tmp/dist-ref.report"

"$tmp/coordinator" -addr 127.0.0.1:0 $DIST_ARGS -partitions 3 -lease-ttl 2s \
	-dir "$tmp/dist" -out "$tmp/dist.report" 2>"$tmp/coord.log" &
coord_pid=$!
caddr=""
for _ in $(seq 1 100); do
	caddr=$(sed -n 's/.* on //p' "$tmp/coord.log" | head -n 1)
	[ -n "$caddr" ] && break
	sleep 0.1
done
[ -n "$caddr" ] || { echo "coordinator never came up"; cat "$tmp/coord.log"; exit 1; }

# Two healthy workers and one deliberately slow victim (fewer crawler
# workers, so the SIGKILL lands before it finishes its partition).
"$tmp/worker" -coordinator "http://$caddr" -id healthy-1 -workers 16 2>/dev/null &
w1_pid=$!
"$tmp/worker" -coordinator "http://$caddr" -id healthy-2 -workers 16 2>/dev/null &
w2_pid=$!
"$tmp/worker" -coordinator "http://$caddr" -id victim -workers 2 2>"$tmp/victim.log" &
victim_pid=$!

killed=""
for _ in $(seq 1 600); do
	if ! kill -0 "$victim_pid" 2>/dev/null; then
		break # finished before we could kill it
	fi
	n=$(grep -c 'committed' "$tmp/victim.log" 2>/dev/null) || n=0
	if [ "${n:-0}" -ge 1 ]; then
		kill -KILL "$victim_pid"
		killed=yes
		break
	fi
	sleep 0.02
done
wait "$victim_pid" 2>/dev/null || true
[ -n "$killed" ] || { echo "victim finished before SIGKILL could land; smoke inconclusive"; exit 1; }

# The coordinator exits after the last partition commits and the merge
# lands; the surviving workers then see Done and exit on their own.
wait "$coord_pid" || { echo "coordinator failed"; cat "$tmp/coord.log"; exit 1; }
wait "$w1_pid" 2>/dev/null || true
wait "$w2_pid" 2>/dev/null || true

grep -q 'lease expired' "$tmp/coord.log" || {
	echo "coordinator never expired the killed worker's lease"; exit 1; }
grep -c 'lease granted' "$tmp/coord.log" | {
	read grants
	[ "$grants" -gt 3 ] || {
		echo "no reassignment after the SIGKILL (only $grants grants)"; exit 1; }
}
cmp "$tmp/dist-ref.report" "$tmp/dist.report" || {
	echo "distributed merged report differs from the serial reference"; exit 1; }

# Cross-version smoke: the same synthetic population written as a v1
# single-file archive and as a v3 delta segmented store must verify under
# fsck (which must report the delta format) and replay to byte-identical
# reports — the on-disk format is an implementation detail the analyses
# never see.
echo "==> cross-version smoke (v1 file vs v3 store, fsck + diff reports)"
go build -o "$tmp/gendata" ./cmd/gendata
"$tmp/gendata" -domains 60 -weeks 8 -seed 7 -quiet -out "$tmp/xver-v1.jsonl.gz" >/dev/null
"$tmp/gendata" -domains 60 -weeks 8 -seed 7 -quiet -segments 2 -out "$tmp/xver.store" >/dev/null
"$tmp/fsck" -store "$tmp/xver.store"
"$tmp/fsck" -store "$tmp/xver.store" -stats | grep -q 'format v3'
"$tmp/analyze" -in "$tmp/xver-v1.jsonl.gz" -weeks 8 -domains 60 >"$tmp/xver-v1.report"
"$tmp/analyze" -in "$tmp/xver.store" -weeks 8 -domains 60 >"$tmp/xver-v3.report"
cmp "$tmp/xver-v1.report" "$tmp/xver-v3.report" || {
	echo "v3 store replay differs from the v1 file of the same run"; exit 1; }

# Serve smoke: start the audit service on an ephemeral port, hit /healthz
# and run one audit, then prove SIGTERM performs a clean graceful stop.
echo "==> serve smoke (healthz + one audit + graceful stop)"
go build -o "$tmp/serve" ./cmd/serve
"$tmp/serve" -addr 127.0.0.1:0 -fetch=false >"$tmp/serve.out" 2>"$tmp/serve.log" &
serve_pid=$!
base=""
for _ in $(seq 1 100); do
	base=$(sed -n 's|^serving on ||p' "$tmp/serve.out")
	[ -n "$base" ] && break
	sleep 0.1
done
[ -n "$base" ] || { echo "serve never came up"; cat "$tmp/serve.log"; exit 1; }
curl -fsS "$base/healthz" | grep -q '"status":"ok"'
curl -fsS -X POST --data-binary \
	'<script src="https://code.jquery.com/jquery-1.12.4.min.js"></script>' \
	"$base/v1/audit?host=smoke.test" | grep -q '"vulnerable_tvv":true'
curl -fsS "$base/v1/libraries" | grep -q '"slug":"jquery"'
curl -fsS "$base/metrics" | grep -q 'clientres_audit_cache_misses_total 1'
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "serve did not stop cleanly"; cat "$tmp/serve.log"; exit 1; }
grep -q "drained and stopped" "$tmp/serve.log"

# Policy + batch smoke: a serve instance preloaded with a failing policy
# and a pinned clock. A 3-record NDJSON batch must stream one verdict line
# per record plus an exactly-reconciling summary; the offline batch gate
# (cmd/analyze -batch) must emit byte-identical lines and exit 1; and the
# auditsite example gated by the same policy must exit nonzero both
# in-process and against the server.
echo "==> policy + batch smoke (server policy, NDJSON batch, offline equivalence, auditsite gate)"
cat >"$tmp/gate.yaml" <<'EOF'
name: ci gate
rules:
  - name: stale-high
    scope: finding
    when: severity == "high" && age(disclosed) > 90d
  - name: missing-sri
    when: missing_sri > 0
EOF
"$tmp/serve" -addr 127.0.0.1:0 -fetch=false -policy "$tmp/gate.yaml" \
	-now 2026-01-02T12:00:00Z >"$tmp/pserve.out" 2>"$tmp/pserve.log" &
pserve_pid=$!
pbase=""
for _ in $(seq 1 100); do
	pbase=$(sed -n 's|^serving on ||p' "$tmp/pserve.out")
	[ -n "$pbase" ] && break
	sleep 0.1
done
[ -n "$pbase" ] || { echo "policy serve never came up"; cat "$tmp/pserve.log"; exit 1; }

# Single audit selecting the preloaded policy: the response becomes the
# {"audit":…,"policy":…} envelope and the verdict header is set.
curl -fsS -X POST --data-binary \
	'<script src="https://code.jquery.com/jquery-1.12.4.min.js"></script>' \
	"$pbase/v1/audit?host=smoke.test&policy=server" >"$tmp/policy-single.json"
grep -q '"overall":"fail"' "$tmp/policy-single.json"
grep -q '"rule":"stale-high"' "$tmp/policy-single.json"

# 3-record batch: a vulnerable page (fail), a clean page (pass), and a url
# record (per-record error) — 3 record lines plus the summary.
cat >"$tmp/batch.ndjson" <<'EOF'
{"html":"<script src=\"https://code.jquery.com/jquery-1.12.4.min.js\"></script>","host":"smoke.test"}
{"html":"<p>no scripts here</p>","host":"smoke.test"}
{"url":"https://smoke.test/"}
EOF
curl -fsS -X POST -H 'Content-Type: application/x-ndjson' \
	--data-binary @"$tmp/batch.ndjson" \
	"$pbase/v1/audit/batch?policy=server" >"$tmp/batch-online.out"
[ "$(wc -l <"$tmp/batch-online.out")" -eq 4 ] || {
	echo "batch reply is not 3 records + summary:"; cat "$tmp/batch-online.out"; exit 1; }
grep -q '"index":0.*"overall":"fail"' "$tmp/batch-online.out"
grep -q '"index":1.*"overall":"pass"' "$tmp/batch-online.out"
grep -q '"index":2,"error"' "$tmp/batch-online.out"
grep -q '"summary":{"records":3,"completed":2,"errors":1,"shed":0,"overall":"fail"}' "$tmp/batch-online.out"

# Offline equivalence: the same records through cmd/analyze -batch with the
# same policy and clock must produce byte-identical lines and exit 1.
if go run ./cmd/analyze -batch "$tmp/batch.ndjson" -policy "$tmp/gate.yaml" \
	-now 2026-01-02T12:00:00Z >"$tmp/batch-offline.out" 2>/dev/null; then
	echo "analyze -batch exited 0 on a failing batch"; exit 1
fi
cmp "$tmp/batch-online.out" "$tmp/batch-offline.out" || {
	echo "offline batch output differs from the online endpoint"; exit 1; }

# The gated example must exit nonzero on the failing sample page — both
# the in-process evaluator and the server round trip.
if go run ./examples/auditsite -policy "$tmp/gate.yaml" -now 2026-01-02T12:00:00Z >/dev/null; then
	echo "auditsite -policy exited 0 on a failing page"; exit 1
fi
if go run ./examples/auditsite -serve "$pbase" -policy "$tmp/gate.yaml" >/dev/null; then
	echo "auditsite -serve -policy exited 0 on a failing page"; exit 1
fi

kill -TERM "$pserve_pid"
wait "$pserve_pid" || { echo "policy serve did not stop cleanly"; cat "$tmp/pserve.log"; exit 1; }
grep -q "drained and stopped" "$tmp/pserve.log"

echo "OK"
