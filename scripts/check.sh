#!/bin/sh
# Full verification gate: vet, build, race-enabled tests, and short smoke
# runs of every fuzz target. Run from the repository root (or via
# `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

# Budgeted fuzz smoke runs: a few seconds each, enough to catch shallow
# regressions on every change without turning CI into a fuzzing farm.
FUZZTIME="${FUZZTIME:-3s}"
echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run '^$' -fuzz '^FuzzTokenize$' -fuzztime "$FUZZTIME" ./internal/htmlx
go test -run '^$' -fuzz '^FuzzParseVersion$' -fuzztime "$FUZZTIME" ./internal/semver
go test -run '^$' -fuzz '^FuzzRange$' -fuzztime "$FUZZTIME" ./internal/semver

# One-iteration bench smoke of the store/fingerprint perf ablations: not
# a measurement, just proof the benchmarks still build, run, and verify
# their own observation counts.
echo "==> bench smoke (store read + fingerprint memo, 1 iteration)"
go test -run '^$' -bench 'BenchmarkStoreReadSegments|BenchmarkFingerprintMemo' \
	-benchmem -benchtime 1x .

# Chaos-crawl smoke: an end-to-end cmd/crawl run with fault injection and
# the resilience layer on. Proves the fault drill terminates and the
# pipeline survives stalls, resets, truncations, and slow-loris drips.
echo "==> chaos crawl smoke (fault-injected end-to-end run)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/crawl -domains 40 -weeks 3 -chaos 0.3 -politeness \
	-out "$tmp/chaos.jsonl.gz" >/dev/null

echo "OK"
