#!/bin/sh
# Store/fingerprint perf ablations: runs BenchmarkStoreReadSegments,
# BenchmarkStoreDecodeSegment (per-segment replay cost vs segment count),
# BenchmarkStoreWrite (the framing + per-week fsync durability tax and the
# v3 delta size win), and BenchmarkFingerprintMemo with -benchmem and
# appends one JSON line per benchmark result to BENCH_store.json, so perf
# PRs accumulate a machine-readable before/after record. Each line carries
# goos/goarch/numcpu so results from different hosts stay comparable.
# Override the measurement budget with BENCHTIME (default 1x, the smoke
# setting scripts/check.sh uses).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_store.json}"

goos=$(go env GOOS)
goarch=$(go env GOARCH)
numcpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

raw=$(go test -run '^$' -bench 'BenchmarkStoreReadSegments|BenchmarkStoreDecodeSegment|BenchmarkStoreWrite|BenchmarkFingerprintMemo' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '%s\n' "$raw" | awk -v ts="$ts" -v benchtime="$BENCHTIME" \
	-v goos="$goos" -v goarch="$goarch" -v numcpu="$numcpu" '
/^Benchmark/ {
	name = $1; iters = $2
	ns = bytes = allocs = mbs = archive = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		else if ($i == "B/op") bytes = $(i - 1)
		else if ($i == "allocs/op") allocs = $(i - 1)
		else if ($i == "MB/s") mbs = $(i - 1)
		else if ($i == "archive-bytes") archive = $(i - 1)
	}
	line = sprintf("{\"ts\":\"%s\",\"benchtime\":\"%s\",\"goos\":\"%s\",\"goarch\":\"%s\",\"numcpu\":%s,\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s",
		ts, benchtime, goos, goarch, numcpu, name, iters, ns)
	if (bytes != "")   line = line sprintf(",\"bytes_per_op\":%s", bytes)
	if (allocs != "")  line = line sprintf(",\"allocs_per_op\":%s", allocs)
	if (mbs != "")     line = line sprintf(",\"mb_per_s\":%s", mbs)
	if (archive != "") line = line sprintf(",\"archive_bytes\":%s", archive)
	print line "}"
}' >> "$OUT"

echo "appended results to $OUT"
