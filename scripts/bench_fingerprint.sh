#!/bin/sh
# Signature-scanner perf ablations: runs BenchmarkSignatureScan (scan
# throughput over plain / bundled / minified script-body populations) and
# BenchmarkSignatureScanMemo (cold scan vs content-hash scan-cache hit on
# a simulated re-crawl week) with -benchmem and appends one JSON line per
# benchmark result to BENCH_fingerprint.json, so perf PRs accumulate a
# machine-readable before/after record. Override the measurement budget
# with BENCHTIME (default 1x, the smoke setting scripts/check.sh uses).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_fingerprint.json}"

raw=$(go test -run '^$' -bench 'BenchmarkSignatureScan|BenchmarkSignatureScanMemo' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '%s\n' "$raw" | awk -v ts="$ts" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
	name = $1; iters = $2
	ns = bytes = allocs = mbs = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		else if ($i == "B/op") bytes = $(i - 1)
		else if ($i == "allocs/op") allocs = $(i - 1)
		else if ($i == "MB/s") mbs = $(i - 1)
	}
	line = sprintf("{\"ts\":\"%s\",\"benchtime\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s",
		ts, benchtime, name, iters, ns)
	if (bytes != "")  line = line sprintf(",\"bytes_per_op\":%s", bytes)
	if (allocs != "") line = line sprintf(",\"allocs_per_op\":%s", allocs)
	if (mbs != "")    line = line sprintf(",\"mb_per_s\":%s", mbs)
	print line "}"
}' >> "$OUT"

echo "appended results to $OUT"
