#!/bin/sh
# Crawl-path perf ablation: runs BenchmarkCrawlWeek (plain vs polite) and
# BenchmarkDistCrawl (coordinator + 1/2/4 workers, whole-run throughput)
# and appends one JSON line per result — including fetch-latency quantiles
# and page throughput — to BENCH_crawl.json, so crawler PRs accumulate a
# machine-readable before/after record. Override the measurement budget
# with BENCHTIME (default 1x, the smoke setting).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_crawl.json}"

raw=$(go test -run '^$' -bench 'BenchmarkCrawlWeek|BenchmarkDistCrawl' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '%s\n' "$raw" | awk -v ts="$ts" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
	name = $1; iters = $2
	ns = bytes = allocs = pages = p50 = p99 = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		else if ($i == "B/op") bytes = $(i - 1)
		else if ($i == "allocs/op") allocs = $(i - 1)
		else if ($i == "pages/s") pages = $(i - 1)
		else if ($i == "p50-ns") p50 = $(i - 1)
		else if ($i == "p99-ns") p99 = $(i - 1)
	}
	line = sprintf("{\"ts\":\"%s\",\"benchtime\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s",
		ts, benchtime, name, iters, ns)
	if (bytes != "")  line = line sprintf(",\"bytes_per_op\":%s", bytes)
	if (allocs != "") line = line sprintf(",\"allocs_per_op\":%s", allocs)
	if (pages != "")  line = line sprintf(",\"pages_per_s\":%s", pages)
	if (p50 != "")    line = line sprintf(",\"fetch_p50_ns\":%s", p50)
	if (p99 != "")    line = line sprintf(",\"fetch_p99_ns\":%s", p99)
	print line "}"
}' >> "$OUT"

echo "appended results to $OUT"
