#!/bin/sh
# Serve-path load test: runs BenchmarkServeAudit (cold vs warm response
# cache) and appends one JSON line per result — req/s plus the service's
# own p50/p99 audit latency — to BENCH_serve.json, so service PRs
# accumulate a machine-readable before/after record. The benchmark fails
# hard if the server's /metrics counters do not reconcile exactly with the
# load generator's totals. Override the measurement budget with BENCHTIME
# (default 1x, the smoke setting).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_serve.json}"

raw=$(go test -run '^$' -bench 'BenchmarkServe(Audit|Batch)' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '%s\n' "$raw" | awk -v ts="$ts" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
	name = $1; iters = $2
	ns = bytes = allocs = reqs = p50 = p99 = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		else if ($i == "B/op") bytes = $(i - 1)
		else if ($i == "allocs/op") allocs = $(i - 1)
		else if ($i == "req/s") reqs = $(i - 1)
		else if ($i == "p50-ns") p50 = $(i - 1)
		else if ($i == "p99-ns") p99 = $(i - 1)
	}
	line = sprintf("{\"ts\":\"%s\",\"benchtime\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s",
		ts, benchtime, name, iters, ns)
	if (bytes != "")  line = line sprintf(",\"bytes_per_op\":%s", bytes)
	if (allocs != "") line = line sprintf(",\"allocs_per_op\":%s", allocs)
	if (reqs != "")   line = line sprintf(",\"req_per_s\":%s", reqs)
	if (p50 != "")    line = line sprintf(",\"audit_p50_ns\":%s", p50)
	if (p99 != "")    line = line sprintf(",\"audit_p99_ns\":%s", p99)
	print line "}"
}' >> "$OUT"

echo "appended results to $OUT"
