#!/bin/sh
# Record/replay perf ablation: runs BenchmarkBundleRecord (plain vs
# recording) and BenchmarkBundleReplay (zero-network crawl from a mounted
# bundle) and appends one JSON line per result to BENCH_bundle.json, so
# bundle PRs accumulate a machine-readable before/after record. Override
# the measurement budget with BENCHTIME (default 1x, the smoke setting).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_bundle.json}"

raw=$(go test -run '^$' -bench 'BenchmarkBundle(Record|Replay)' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '%s\n' "$raw" | awk -v ts="$ts" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
	name = $1; iters = $2
	ns = bytes = allocs = pages = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		else if ($i == "B/op") bytes = $(i - 1)
		else if ($i == "allocs/op") allocs = $(i - 1)
		else if ($i == "pages/s") pages = $(i - 1)
	}
	line = sprintf("{\"ts\":\"%s\",\"benchtime\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s",
		ts, benchtime, name, iters, ns)
	if (bytes != "")  line = line sprintf(",\"bytes_per_op\":%s", bytes)
	if (allocs != "") line = line sprintf(",\"allocs_per_op\":%s", allocs)
	if (pages != "")  line = line sprintf(",\"pages_per_s\":%s", pages)
	print line "}"
}' >> "$OUT"

echo "appended results to $OUT"
