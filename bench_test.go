package clientres

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md §4 for the experiment index). Each BenchmarkTableN /
// BenchmarkFigureN regenerates that experiment: it replays the full
// observation stream through the experiment's collector(s) and renders the
// paper's output. Shared across benchmarks is a single materialized
// observation dataset (one synthetic population, all 201 weeks), so
// per-experiment costs are comparable.
//
// Run with:  go test -bench=. -benchmem

import (
	"io"
	"sync"
	"testing"

	"clientres/internal/analysis"
	"clientres/internal/fingerprint"
	"clientres/internal/poclab"
	"clientres/internal/report"
	"clientres/internal/store"
	"clientres/internal/webgen"
)

// benchDomains scales the benchmark dataset. 800 domains × 201 weeks =
// 160,800 observations per replay.
const benchDomains = 800

var (
	benchOnce sync.Once
	benchEco  *webgen.Ecosystem
	benchObs  []store.Observation
)

func benchData(b *testing.B) ([]store.Observation, int) {
	b.Helper()
	benchOnce.Do(func() {
		benchEco = webgen.New(webgen.Config{Domains: benchDomains, Seed: 1})
		src := analysis.TruthSource{Eco: benchEco}
		benchObs = make([]store.Observation, 0, benchDomains*benchEco.Cfg.Weeks)
		src.ForEach(func(obs store.Observation) {
			benchObs = append(benchObs, obs)
		})
	})
	return benchObs, benchEco.Cfg.Weeks
}

func replay(obs []store.Observation, collectors ...analysis.Collector) {
	r := analysis.NewRunner(collectors...)
	for _, o := range obs {
		r.Observe(o)
	}
}

// --- Tables ---

// BenchmarkTable1 regenerates the top-15 library landscape.
func BenchmarkTable1(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		libs := analysis.NewLibraryStats(weeks)
		replay(obs, libs)
		report.Table1(io.Discard, libs.Table1())
	}
}

// BenchmarkTable2 regenerates the advisory validation table: the PoC
// version-validation experiment plus the affected-site measurement.
func BenchmarkTable2(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vuln := analysis.NewVulnPrevalence(weeks)
		replay(obs, vuln)
		findings, err := poclab.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		report.Table2(io.Discard, findings, vuln)
	}
}

// BenchmarkTable3 renders the browser/Flash-support matrix.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Table3(io.Discard)
	}
}

// BenchmarkTable4 regenerates the WordPress CVE exposure table.
func BenchmarkTable4(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wp := analysis.NewWordPress(weeks)
		replay(obs, wp)
		report.Table4(io.Discard, wp.Table4())
	}
}

// BenchmarkTable5 regenerates the top-CDNs-per-library table.
func BenchmarkTable5(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		libs := analysis.NewLibraryStats(weeks)
		replay(obs, libs)
		report.Table5(io.Discard, libs)
	}
}

// BenchmarkTable6 regenerates the version-control-hosted inclusion table.
func BenchmarkTable6(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sri := analysis.NewSRI(weeks)
		replay(obs, sri)
		report.Table6(io.Discard, sri)
	}
}

// --- Figures ---

// BenchmarkFigure2a regenerates the weekly collection counts.
func BenchmarkFigure2a(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll := analysis.NewCollection(weeks)
		replay(obs, coll)
		report.Figure2a(io.Discard, coll)
	}
}

// BenchmarkFigure2b regenerates the top-8 resource-usage shares.
func BenchmarkFigure2b(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll := analysis.NewCollection(weeks)
		replay(obs, coll)
		report.Figure2b(io.Discard, coll)
	}
}

// BenchmarkFigure3 regenerates the library usage trends.
func BenchmarkFigure3(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		libs := analysis.NewLibraryStats(weeks)
		replay(obs, libs)
		report.Figure3(io.Discard, libs, weeks)
	}
}

// BenchmarkFigure4 regenerates the jQuery CVE-vs-TVV interval comparison
// (the PoC sweep over all 80 jQuery versions).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings, err := poclab.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		report.Figure4(io.Discard, findings, "jquery", "Figure 4")
	}
}

// BenchmarkFigure5 regenerates the affected-site series for the jQuery
// advisories.
func BenchmarkFigure5(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vuln := analysis.NewVulnPrevalence(weeks)
		replay(obs, vuln)
		report.Figure5(io.Discard, vuln, weeks,
			[]string{"CVE-2020-7656", "CVE-2014-6071", "CVE-2020-11022"}, "Figure 5")
	}
}

// BenchmarkFigure6 regenerates the CVE-2020-7656 version-trend series.
func BenchmarkFigure6(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		libs := analysis.NewLibraryStats(weeks)
		replay(obs, libs)
		report.Figure6(io.Discard, libs, weeks)
	}
}

// BenchmarkFigure7 regenerates the jQuery 1.12.4 vs 3.5+ series with the
// WordPress attribution.
func BenchmarkFigure7(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		libs := analysis.NewLibraryStats(weeks)
		replay(obs, libs)
		report.Figure7(io.Discard, libs, weeks)
	}
}

// BenchmarkFigure8 regenerates the Flash decline series.
func BenchmarkFigure8(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flash := analysis.NewFlash(weeks, benchDomains)
		replay(obs, flash)
		report.Figure8(io.Discard, flash, weeks)
	}
}

// BenchmarkFigure9 regenerates the WordPress usage series.
func BenchmarkFigure9(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wp := analysis.NewWordPress(weeks)
		replay(obs, wp)
		report.Figure9(io.Discard, wp, weeks)
	}
}

// BenchmarkFigure10 regenerates the Subresource Integrity series.
func BenchmarkFigure10(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sri := analysis.NewSRI(weeks)
		replay(obs, sri)
		report.Figure10(io.Discard, sri, weeks)
	}
}

// BenchmarkFigure11 regenerates the AllowScriptAccess series.
func BenchmarkFigure11(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flash := analysis.NewFlash(weeks, benchDomains)
		replay(obs, flash)
		report.Figure11(io.Discard, flash, weeks)
	}
}

// BenchmarkFigure12 regenerates the vulnerability-count CDF.
func BenchmarkFigure12(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vuln := analysis.NewVulnPrevalence(weeks)
		replay(obs, vuln)
		report.Figure12(io.Discard, vuln)
	}
}

// BenchmarkFigure13 regenerates the non-jQuery CVE-vs-TVV comparisons.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings, err := poclab.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		report.Figure13(io.Discard, findings)
	}
}

// BenchmarkFigure14 regenerates the non-jQuery affected-site series.
func BenchmarkFigure14(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vuln := analysis.NewVulnPrevalence(weeks)
		replay(obs, vuln)
		report.Figure14(io.Discard, vuln, weeks)
	}
}

// BenchmarkFigure15 regenerates the top-5 affected-version trends.
func BenchmarkFigure15(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		libs := analysis.NewLibraryStats(weeks)
		replay(obs, libs)
		report.Figure15(io.Discard, libs, weeks)
	}
}

// --- Section-level measurements without a figure of their own ---

// BenchmarkVulnPrevalence regenerates the Section 6.2 headline (41.2 % of
// sites carry ≥1 vulnerability).
func BenchmarkVulnPrevalence(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vuln := analysis.NewVulnPrevalence(weeks)
		replay(obs, vuln)
		_ = vuln.MeanVulnerableShare(false)
		_ = vuln.MeanVulnerableShare(true)
	}
}

// BenchmarkUpdateDelay regenerates the Section 7 window-of-vulnerability
// measurement (531.2 / 701.2 days).
func BenchmarkUpdateDelay(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delay := analysis.NewUpdateDelay(weeks)
		replay(obs, delay)
		_ = delay.Result(false, false)
		_ = delay.Result(true, true)
	}
}

// BenchmarkDiscontinued regenerates the Section 6.3 discontinued-library
// and migration measurement.
func BenchmarkDiscontinued(b *testing.B) {
	obs, weeks := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disc := analysis.NewDiscontinued(weeks)
		replay(obs, disc)
		_, _ = disc.MigrationStats()
	}
}

// --- Substrate throughput ---

// BenchmarkFingerprintPage measures detection throughput on a rendered
// landing page.
func BenchmarkFingerprintPage(b *testing.B) {
	eco := webgen.New(webgen.Config{Domains: 50, Seed: 3})
	var html, host string
	for i := range eco.Sites {
		if t := eco.Truth(i, 50); t.Accessible && len(t.Libs) >= 3 {
			html, _ = eco.PageHTML(i, 50)
			host = eco.Sites[i].Domain.Name
			break
		}
	}
	if html == "" {
		b.Fatal("no suitable page")
	}
	b.SetBytes(int64(len(html)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fingerprint.Page(html, host)
	}
}

// BenchmarkRenderPage measures the generator's page-rendering throughput.
func BenchmarkRenderPage(b *testing.B) {
	eco := webgen.New(webgen.Config{Domains: 50, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = eco.PageHTML(i%50, (i*7)%eco.Cfg.Weeks)
	}
}

// BenchmarkCrawlWeek (end-to-end crawl throughput over real HTTP) lives in
// bench_crawl_test.go, where it ablates the resilience layer (plain vs
// polite) and reports fetch-latency quantiles.

// BenchmarkPoCSweep measures one full PoC validation sweep (the paper's 85
// jQuery environments and every other catalog).
func BenchmarkPoCSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := poclab.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}
