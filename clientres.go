// Package clientres reproduces the measurement system of "A Longitudinal
// Study of Vulnerable Client-side Resources and Web Developers' Updating
// Behaviors" (IMC 2023): a weekly landing-page crawler, a Wappalyzer-style
// resource/version fingerprinter, a CVE/TVV vulnerability database, the PoC
// version-validation experiment, and every analysis of the paper's
// evaluation — backed by a calibrated synthetic web ecosystem standing in
// for the unobtainable four-year Alexa-1M crawl (see DESIGN.md).
//
// Three entry points cover the common uses:
//
//   - Run executes the full study (generate → collect → analyze → validate)
//     and returns Results whose WriteReport regenerates every table and
//     figure of the paper.
//   - AuditPage fingerprints a single HTML document and reports the
//     vulnerable libraries on it (the Retire.js-style use).
//   - Serve runs the same audit as a long-running HTTP API (cmd/serve's
//     engine): cached, rate-limited, backpressured, gracefully draining.
//   - ValidateCVEs runs the PoC version-validation experiment alone and
//     reports which CVEs understate or overstate their affected versions.
package clientres

import (
	"context"
	"io"
	"time"

	"clientres/internal/analysis"
	"clientres/internal/core"
	"clientres/internal/crawler"
	"clientres/internal/distcrawl"
	"clientres/internal/fingerprint"
	"clientres/internal/poclab"
	"clientres/internal/policy"
	"clientres/internal/service"
	"clientres/internal/vulndb"
	"clientres/internal/webgen"
)

// Config parameterizes a study run.
type Config struct {
	// Domains is the size of the modeled ranked population (default 2000;
	// the paper used 1M).
	Domains int
	// Weeks is the number of weekly snapshots (default 201, the paper's
	// pruned four-year collection).
	Weeks int
	// Seed makes the run deterministic.
	Seed int64
	// Crawl switches from direct ground-truth collection to the real
	// pipeline: a loopback HTTP server, the concurrent crawler, and the
	// fingerprint engine.
	Crawl bool
	// Workers bounds crawl concurrency.
	Workers int
	// PoliteCrawl enables the crawl path's per-host resilience layer —
	// politeness limiter, circuit breaker, weekly retry budget — with
	// default settings. Reports are byte-identical with it on or off; the
	// layer changes how failures cost, not what gets observed.
	PoliteCrawl bool
	// BundleFraction is the fraction of eligible generated sites that ship
	// their libraries as one bundled script with minified identifiers
	// (0 disables, preserving the historical population byte-for-byte).
	// Bundles hide library URLs from the fingerprinter — the blind spot
	// BundleScan measures and closes.
	BundleFraction float64
	// BundleScan makes the crawl path fetch each page's same-site scripts
	// and scan their content for library signatures, recovering bundled
	// libraries. Plain pages detect identically with it on or off.
	BundleScan bool
	// Shards parallelizes the analysis pipeline across domain-hash
	// partitions (default 1 = serial). Sharded runs produce byte-identical
	// reports to serial runs of the same configuration.
	Shards int
	// StorePath, when set, persists observations as gzip JSONL — or, with
	// StoreSegments > 1, as a segmented store directory (per-partition
	// segment files plus a manifest) whose writes and replays parallelize.
	StorePath string
	// StoreSegments selects the segmented store layout (0 or 1 keeps the
	// single gzip JSONL file). Both layouts replay to byte-identical
	// reports; segment partition matches the Shards partition, so a
	// replay with shards == segments decodes every segment concurrently
	// straight into its shard's collectors.
	StoreSegments int
	// FingerprintCacheSize bounds the per-shard fingerprint memo cache on
	// the crawl path (entries; 0 = default, negative = disable). Unchanged
	// pages — the common case week over week — skip re-fingerprinting;
	// results are identical either way.
	FingerprintCacheSize int
	// RecordBundle, when set (with Crawl), archives every fetched response
	// — landing pages and same-site scripts, raw bytes plus headers,
	// status, and timing — into a web-execution bundle at this directory.
	// Reports are byte-identical with recording on or off.
	RecordBundle string
	// ReplayBundle, when set (with Crawl), re-runs the crawl from a
	// recorded bundle with zero network: no listener is opened and the
	// crawler's transport serves only archived responses. A replayed run's
	// report is byte-identical to the live run that recorded the bundle.
	ReplayBundle string
	// Progress receives one line per collected week, when set.
	Progress func(format string, args ...any)
}

// Results exposes everything a run produced. The embedded collectors carry
// the full per-week aggregates; WriteReport renders the paper's tables and
// figures; Headline summarizes the flagship numbers.
type Results struct {
	inner *core.Results
}

// Run executes the study described by cfg.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	mode := core.ModeDirect
	if cfg.Crawl {
		mode = core.ModeCrawl
	}
	inner, err := core.Run(ctx, core.Config{
		Domains: cfg.Domains, Weeks: cfg.Weeks, Seed: cfg.Seed,
		Bundling:   webgen.DefaultBundling(cfg.BundleFraction),
		BundleScan: cfg.BundleScan,
		Mode:       mode, Workers: cfg.Workers, Shards: cfg.Shards,
		Resilience: crawler.Resilience{Enabled: cfg.PoliteCrawl},
		StorePath:  cfg.StorePath, StoreSegments: cfg.StoreSegments,
		FingerprintCacheSize: cfg.FingerprintCacheSize,
		RecordBundle:         cfg.RecordBundle,
		ReplayBundle:         cfg.ReplayBundle,
		Progress:             cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	return &Results{inner: inner}, nil
}

// WriteReport renders every table and figure of the paper's evaluation.
func (r *Results) WriteReport(w io.Writer) { r.inner.WriteReport(w) }

// Summary carries the paper's headline findings as measured on this run.
type Summary struct {
	// MeanCollected is the average number of usable pages per week.
	MeanCollected float64
	// VulnerableShareCVE / VulnerableShareTVV are the average shares of
	// sites carrying ≥1 known vulnerability under the CVE-disclosed and
	// true vulnerable-version ranges (paper: 41.2 % / 43.2 %).
	VulnerableShareCVE, VulnerableShareTVV float64
	// MeanVulnsPerPageCVE / TVV mirror Figure 12 (paper: 0.79 / 0.97).
	MeanVulnsPerPageCVE, MeanVulnsPerPageTVV float64
	// UpdateDelayDays is the mean window of vulnerability under CVE ranges
	// (paper: 531.2); UpdateDelayDaysTVV restricts to understated CVEs
	// under TVV ranges (paper: 701.2).
	UpdateDelayDays, UpdateDelayDaysTVV float64
	// UpdatedSites is the number of closed update windows (paper: 25,337).
	UpdatedSites int
	// MissingSRIShare is the share of external-library sites with ≥1
	// uncovered inclusion (paper: 99.7 %).
	MissingSRIShare float64
	// FlashPostEOL is the mean weekly count of Flash sites after Jan 2021
	// (paper: 3,553 of 1M).
	FlashPostEOL float64
	// InsecureFlashShare is the AllowScriptAccess="always" share among
	// Flash sites (paper: 24.7 %).
	InsecureFlashShare float64
	// WordPressShare mirrors Figure 9 (paper: 26.9 %).
	WordPressShare float64
	// IncorrectCVEs counts advisories whose PoC-validated range disagrees
	// with the disclosed range (paper: 13 of 27).
	IncorrectCVEs, TotalCVEs int
}

// Headline computes the summary.
func (r *Results) Headline() Summary {
	in := r.inner
	cve := in.Delay.Result(false, false)
	tvv := in.Delay.Result(true, true)
	s := Summary{
		MeanCollected:       in.Coll.MeanCollected(),
		VulnerableShareCVE:  in.Vuln.MeanVulnerableShare(false),
		VulnerableShareTVV:  in.Vuln.MeanVulnerableShare(true),
		MeanVulnsPerPageCVE: in.Vuln.MeanVulnsPerSite(false),
		MeanVulnsPerPageTVV: in.Vuln.MeanVulnsPerSite(true),
		UpdateDelayDays:     cve.MeanDays,
		UpdateDelayDaysTVV:  tvv.MeanDays,
		UpdatedSites:        cve.Updated,
		MissingSRIShare:     in.SRI.MissingSRIShare(),
		FlashPostEOL:        in.Flash.MeanPostEOL(),
		InsecureFlashShare:  in.Flash.MeanInsecureShare(),
		WordPressShare:      in.WordPress.MeanShare(),
		TotalCVEs:           len(in.Findings),
	}
	for _, f := range in.Findings {
		if f.Accuracy != vulndb.Accurate {
			s.IncorrectCVEs++
		}
	}
	return s
}

// Collectors exposes the underlying analysis collectors for advanced use
// within this module.
func (r *Results) Collectors() *core.Results { return r.inner }

// AuditFinding is one vulnerable library found on an audited page.
type AuditFinding struct {
	Library    string // canonical slug
	Version    string // detected version ("" when the URL carries none)
	Advisory   string // CVE or advisory ID
	Attack     string
	FixedIn    string // patched version ("" when unpatched)
	Disclosed  string // YYYY-MM-DD
	PerCVEOnly bool   // true when only the (possibly inaccurate) CVE range matches, not the validated TVV
}

// AuditReport is the result of auditing one page.
type AuditReport struct {
	// Libraries lists every detected library inclusion (slug@version).
	Libraries []string
	// Findings lists the matched vulnerabilities under the validated
	// (TVV) ranges, plus CVE-range-only matches flagged PerCVEOnly.
	Findings []AuditFinding
	// MissingSRI counts external inclusions without an integrity
	// attribute; UsesFlash flags Flash embeds; InsecureFlash flags
	// AllowScriptAccess="always".
	MissingSRI    int
	UsesFlash     bool
	InsecureFlash bool
}

// AuditPage fingerprints one HTML document fetched from pageHost and
// reports vulnerable libraries and hygiene problems — the single-page
// scanner the paper's methodology implies.
func AuditPage(html, pageHost string) AuditReport {
	det := fingerprint.Page(html, pageHost)
	var rep AuditReport
	for _, hit := range det.Libraries {
		label := hit.Slug
		if !hit.Version.IsZero() {
			label += "@" + hit.Version.String()
		}
		rep.Libraries = append(rep.Libraries, label)
		if hit.External && !hit.SRI {
			rep.MissingSRI++
		}
		if !hit.Known || hit.Version.IsZero() {
			continue
		}
		for _, adv := range vulndb.AdvisoriesFor(hit.Slug) {
			inTVV := adv.EffectiveTrueRange().Contains(hit.Version)
			inCVE := adv.CVERange.Contains(hit.Version)
			if !inTVV && !inCVE {
				continue
			}
			finding := AuditFinding{
				Library: hit.Slug, Version: hit.Version.String(),
				Advisory: adv.ID, Attack: string(adv.Attack),
				Disclosed:  adv.Disclosed.Format("2006-01-02"),
				PerCVEOnly: inCVE && !inTVV,
			}
			if !adv.Patched.IsZero() {
				finding.FixedIn = adv.Patched.String()
			}
			rep.Findings = append(rep.Findings, finding)
		}
	}
	if det.Flash != nil {
		rep.UsesFlash = true
		rep.InsecureFlash = det.Flash.Always
	}
	return rep
}

// Policy is a compiled audit policy: a list of declarative rules
// ("fail if any high-severity CVE has been public for over 90 days")
// evaluated against audit results. See DESIGN.md §14 for the language.
type Policy = policy.Policy

// PolicyVerdict is the result of evaluating a Policy against one page:
// per-rule outcomes plus the worst overall ("pass" | "warn" | "fail").
type PolicyVerdict = policy.Verdict

// PolicyRuleVerdict is one rule's outcome within a PolicyVerdict.
type PolicyRuleVerdict = policy.RuleVerdict

// CompilePolicy compiles YAML or JSON policy source. Compilation
// type-checks every rule expression; evaluation cannot fail at runtime.
func CompilePolicy(src []byte) (*Policy, error) { return policy.Compile(src) }

// EvalPolicy audits html served from pageHost and evaluates pol against
// the result as of now (zero now means the current time). This is the
// in-process form of the service's policy gate: for the same page, host,
// policy, and clock it produces exactly the verdict POST /v1/audit or
// the batch endpoint would return.
func EvalPolicy(pol *Policy, html, pageHost string, now time.Time) PolicyVerdict {
	if now.IsZero() {
		now = time.Now()
	}
	resp := service.Audit(html, pageHost, now)
	return pol.Eval(resp.PolicyDoc(now))
}

// ServeConfig parameterizes the online audit service.
type ServeConfig struct {
	// Addr is the listen address (":8080"; ":0" picks an ephemeral port).
	Addr string
	// Workers bounds concurrent audits; QueueDepth bounds waiting ones —
	// beyond it the service sheds with 503 + Retry-After.
	Workers, QueueDepth int
	// CacheEntries bounds the content-hash response cache (negative
	// disables); RatePerSec/Burst shape the per-client token bucket
	// (RatePerSec 0 disables).
	CacheEntries int
	RatePerSec   float64
	Burst        int
}

// Serve runs the online vulnerability-audit API — POST /v1/audit,
// GET /v1/libraries, GET /v1/vulns/{lib}, /healthz, /metrics — until ctx
// is cancelled, then drains in-flight audits and returns. It is the
// library form of cmd/serve (which adds flags, logging, and URL-mode
// fetching through the resilient crawler).
func Serve(ctx context.Context, cfg ServeConfig) error {
	srv := service.New(service.Config{
		Workers: cfg.Workers, QueueDepth: cfg.QueueDepth,
		CacheEntries: cfg.CacheEntries,
		RatePerSec:   cfg.RatePerSec, Burst: cfg.Burst,
	})
	return srv.ListenAndServe(ctx, cfg.Addr, nil)
}

// DistSpec parameterizes a distributed crawl run — the coordinator/worker
// plane that shards the study's domains across processes by the same
// FNV-1a hash as Shards, recovers dead workers via lease expiry and
// reassignment, and merges the workers' generation stores into Results
// byte-identical to a serial Run of the same configuration. See
// internal/distcrawl and DESIGN.md §16.
type DistSpec = distcrawl.RunSpec

// DistCoordinator is the distributed plane's control point: it owns the
// frontier, leases partitions, fences zombies by epoch, and persists
// assignment state atomically so a restart rehydrates the run.
type DistCoordinator = distcrawl.Coordinator

// DistWorker crawls leased partitions against a coordinator, writing one
// checkpointed generation store per lease epoch.
type DistWorker = distcrawl.Worker

// NewDistCoordinator creates (or rehydrates, when spec.Dir holds a prior
// run's state) a distributed-crawl coordinator.
func NewDistCoordinator(spec DistSpec) (*DistCoordinator, error) {
	return distcrawl.NewCoordinator(spec)
}

// MergeDistRun merges a distributed run's accepted spans into Results —
// sealing any generation its worker never closed — exactly as the
// coordinator's own post-run merge does.
func MergeDistRun(spec DistSpec, spans []distcrawl.Span) (*Results, error) {
	inner, err := distcrawl.Merge(spec, spans, distcrawl.MergeOptions{})
	if err != nil {
		return nil, err
	}
	return &Results{inner: inner}, nil
}

// CVEFinding is one row of the version-validation experiment.
type CVEFinding struct {
	Advisory  string
	Library   string
	CVERange  string
	TrueRange string
	Accuracy  string // accurate | understated | overstated | mixed
}

// ValidateCVEs runs the PoC version-validation experiment (Section 6.4)
// and reports each advisory's accuracy classification.
func ValidateCVEs() ([]CVEFinding, error) {
	findings, err := poclab.RunAll()
	if err != nil {
		return nil, err
	}
	out := make([]CVEFinding, len(findings))
	for i, f := range findings {
		out[i] = CVEFinding{
			Advisory:  f.Advisory.ID,
			Library:   f.Advisory.Lib,
			CVERange:  f.Advisory.CVERange.String(),
			TrueRange: f.TVV.String(),
			Accuracy:  f.Accuracy.String(),
		}
	}
	return out, nil
}

// StudyWeeks is the paper's snapshot count (201 weekly snapshots,
// Mar 2018 – Feb 2022).
const StudyWeeks = webgen.StudyWeeks

// WeekDate returns the calendar date of snapshot week w.
var WeekDate = analysis.WeekDate
